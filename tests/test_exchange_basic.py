"""Unit tests for the basic information exchange E_basic."""

import pytest

from repro.core.types import DECIDE_1, NOOP
from repro.exchange import BasicExchange, DecideNotification, InitOneHeartbeat


@pytest.fixture
def exchange():
    return BasicExchange(4)


class TestMessages:
    def test_undecided_one_sends_heartbeat(self, exchange):
        state = exchange.initial_state(0, 1)
        assert exchange.messages_for(state, NOOP) == (InitOneHeartbeat(),) * 4

    def test_undecided_zero_is_silent(self, exchange):
        state = exchange.initial_state(0, 0)
        assert exchange.messages_for(state, NOOP) == (None,) * 4

    def test_decide_overrides_heartbeat(self, exchange):
        state = exchange.initial_state(0, 1)
        assert exchange.messages_for(state, DECIDE_1) == (DecideNotification(1),) * 4

    def test_no_heartbeat_after_decision(self, exchange):
        state = exchange.initial_state(0, 1)
        decided = exchange.update(state, DECIDE_1, (None,) * 4)
        assert exchange.messages_for(decided, NOOP) == (None,) * 4

    def test_no_heartbeat_once_jd_is_set(self, exchange):
        state = exchange.initial_state(0, 1)
        heard = exchange.update(state, NOOP, (DecideNotification(0), None, None, None))
        assert heard.jd == 0
        assert exchange.messages_for(heard, NOOP) == (None,) * 4


class TestCounter:
    def test_counts_heartbeats(self, exchange):
        state = exchange.initial_state(0, 1)
        received = (InitOneHeartbeat(), InitOneHeartbeat(), None, InitOneHeartbeat())
        updated = exchange.update(state, NOOP, received)
        assert updated.count_ones == 3

    def test_counter_reset_after_own_decision(self, exchange):
        state = exchange.initial_state(0, 1)
        received = (InitOneHeartbeat(),) * 4
        updated = exchange.update(state, DECIDE_1, received)
        assert updated.count_ones == 0

    def test_counter_reset_when_decide_notification_arrives(self, exchange):
        state = exchange.initial_state(0, 1)
        received = (InitOneHeartbeat(), DecideNotification(1), InitOneHeartbeat(), None)
        updated = exchange.update(state, NOOP, received)
        assert updated.count_ones == 0
        assert updated.jd == 1

    def test_counter_is_per_round(self, exchange):
        state = exchange.initial_state(0, 1)
        first = exchange.update(state, NOOP, (InitOneHeartbeat(),) * 4)
        assert first.count_ones == 4
        second = exchange.update(first, NOOP, (InitOneHeartbeat(), None, None, None))
        assert second.count_ones == 1


class TestEbaContextConstraints:
    def test_decide_messages_distinguishable_from_heartbeat(self, exchange):
        assert DecideNotification(0) != InitOneHeartbeat()
        assert DecideNotification(1) != InitOneHeartbeat()

    def test_initial_state_has_zero_counter(self, exchange):
        assert exchange.initial_state(3, 1).count_ones == 0
