"""Tests for the job-server subsystem (:mod:`repro.service`).

Covers the four layers separately and end to end:

* the wire format — protocol/pattern/request round trips, content keys that
  equal the artifact-store keys, malformed bodies raising ``ServiceError``;
* the job queue — coalescing, warm-born jobs, cancellation, the counters;
* the HTTP server + client — submit/poll/result/cancel, worker-crash
  isolation, graceful shutdown;
* the acceptance property — two concurrent identical submissions against a
  cold store execute **once** and return byte-identical payloads, themselves
  byte-identical to the direct (CLI-path) computation.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.api import RunSpec, Sweep
from repro.core.errors import ServiceError, ServiceTimeout
from repro.experiments import implementation_check
from repro.failures import FailurePattern
from repro.protocols import MinProtocol
from repro.service import (
    DEFAULT_PORT,
    JobQueue,
    JobServer,
    ServiceClient,
    decode_request,
    encode_pattern,
    encode_protocol,
    probe_warm,
    render_result,
    run_request,
    sweep_request,
    theorem_request,
)
from repro.service.jobs import CANCELLED, DONE, FAILED, QUEUED, RUNNING
from repro.store import ArtifactStore, default_store, run_task_key, sweep_key


def tiny_run_body():
    return run_request("min", 1, 3, [1, 0, 1])


def tiny_sweep_body(seed=0):
    return sweep_request([("min", 1), ("opt", 1)],
                         workload={"n": 3, "t": 1, "count": 4, "seed": seed})


# --------------------------------------------------------------------------- wire


class TestWireFormat:
    def test_protocol_round_trip(self):
        for key in ("min", "basic", "opt", "naive0", "delayed"):
            body = {"protocol": key, "t": 2}
            protocol = decode_request(
                {"type": "run", "protocol": key, "t": 2, "n": 5,
                 "preferences": [1] * 5}).spec.protocol
            assert encode_protocol(protocol) == body

    def test_pattern_round_trip(self):
        pattern = FailurePattern.silent(4, faulty=[1], horizon=3)
        body = run_request("min", 1, 4, [1, 1, 0, 1], pattern=pattern)
        request = decode_request(body)
        assert request.spec.pattern == pattern

    def test_run_key_is_the_store_run_key(self):
        request = decode_request(tiny_run_body())
        spec = request.spec
        preferences, pattern = spec.scenario  # pattern=None normalised, as run() does
        task = (spec.protocol, spec.n, preferences, pattern, spec.horizon)
        assert request.key == run_task_key(task)

    def test_sweep_key_is_the_store_sweep_key(self):
        request = decode_request(tiny_sweep_body())
        assert request.key == sweep_key(request.spec)

    def test_sweep_workload_matches_builder_spec(self):
        """A 'workload' sweep decodes to the same content key as the same
        sweep built locally with the fluent API — the service coalesces with
        direct library users, not just with other service clients."""
        request = decode_request(tiny_sweep_body())
        from repro.protocols.popt import OptimalFipProtocol
        built = (Sweep.of(MinProtocol(1), OptimalFipProtocol(1))
                 .on_random(n=3, t=1, count=4, seed=0).build())
        assert request.key == sweep_key(built)
        assert request.spec.scenarios == built.scenarios

    @pytest.mark.parametrize("body, fragment", [
        ("not an object", "JSON object"),
        ({}, "'type'"),
        ({"type": "nope"}, "unknown request kind"),
        ({"type": "run", "protocol": "nope", "t": 1, "n": 3,
          "preferences": [1, 1, 1]}, "unknown protocol"),
        ({"type": "run", "protocol": "min", "t": -1, "n": 3,
          "preferences": [1, 1, 1]}, "non-negative"),
        ({"type": "run", "protocol": "min", "t": 1}, "'n'"),
        ({"type": "theorem", "theorem": "9.9", "n": 3, "t": 1},
         "unknown theorem"),
        ({"type": "sweep", "protocols": [{"protocol": "min", "t": 1}],
          "workload": {"n": 3, "t": 1, "count": 2}, "scenarios": []},
         "not both"),
    ])
    def test_malformed_bodies_raise_service_error(self, body, fragment):
        with pytest.raises(ServiceError, match=fragment.replace("'", "")):
            decode_request(body)

    def test_builder_rejects_ambiguous_sweep(self):
        with pytest.raises(ServiceError):
            sweep_request([("min", 1)])  # neither scenarios nor workload

    def test_encode_protocol_rejects_unregistered(self):
        class OddProtocol(MinProtocol):
            pass
        with pytest.raises(ServiceError, match="registry"):
            encode_protocol(OddProtocol(1))

    def test_request_bodies_are_json_serialisable(self):
        pattern = FailurePattern.silent(3, faulty=[0], horizon=2)
        for body in (tiny_run_body(), tiny_sweep_body(),
                     theorem_request("6.5", 3, 1),
                     sweep_request([("min", 1)], scenarios=[((1, 0, 1), pattern)],
                                   n=3)):
            assert decode_request(json.loads(json.dumps(body))).key

    def test_pattern_encoding_is_canonical(self):
        pattern = FailurePattern.silent(4, faulty=[2, 1], horizon=2)
        encoded = encode_pattern(pattern)
        assert encoded["faulty"] == sorted(encoded["faulty"])
        assert encoded["omissions"] == sorted(encoded["omissions"])


# --------------------------------------------------------------------------- queue


class TestJobQueue:
    def test_submit_then_drain(self):
        queue = JobQueue()
        request = decode_request(tiny_run_body())
        job, coalesced = queue.submit(request)
        assert (job.state, coalesced) == (QUEUED, False)
        picked = queue.next_job(timeout=1.0)
        assert picked is job and job.state == RUNNING
        queue.finish(job, {"kind": "run"})
        assert job.state == DONE and queue.executed == 1

    def test_identical_submissions_coalesce_while_live(self):
        queue = JobQueue()
        request = decode_request(tiny_run_body())
        first, _ = queue.submit(request)
        second, coalesced = queue.submit(decode_request(tiny_run_body()))
        assert coalesced and second is first and first.submissions == 2
        queue.next_job(timeout=1.0)  # running now: still coalesces
        third, coalesced = queue.submit(request)
        assert coalesced and third is first
        assert (queue.submitted, queue.coalesced) == (3, 2)

    def test_distinct_requests_do_not_coalesce(self):
        queue = JobQueue()
        first, _ = queue.submit(decode_request(tiny_sweep_body(seed=0)))
        second, coalesced = queue.submit(decode_request(tiny_sweep_body(seed=1)))
        assert not coalesced and second is not first

    def test_done_job_reserves_without_requeue(self):
        queue = JobQueue()
        job, _ = queue.submit(decode_request(tiny_run_body()))
        queue.next_job(timeout=1.0)
        queue.finish(job, {"kind": "run"})
        again, coalesced = queue.submit(decode_request(tiny_run_body()))
        assert again is job and not coalesced
        assert queue.store_hits == 1
        assert queue.next_job(timeout=0.05) is None  # nothing re-enqueued

    def test_warm_result_is_born_done(self):
        queue = JobQueue()
        job, coalesced = queue.submit(decode_request(tiny_run_body()),
                                      warm_result={"kind": "run"})
        assert job.state == DONE and not coalesced
        assert job.result == {"kind": "run"} and queue.store_hits == 1

    def test_failed_key_gets_a_fresh_attempt(self):
        queue = JobQueue()
        job, _ = queue.submit(decode_request(tiny_run_body()))
        queue.next_job(timeout=1.0)
        queue.fail(job, "boom")
        retry, coalesced = queue.submit(decode_request(tiny_run_body()))
        assert retry is not job and not coalesced and retry.state == QUEUED

    def test_cancel_only_affects_queued_jobs(self):
        queue = JobQueue()
        job, _ = queue.submit(decode_request(tiny_run_body()))
        assert queue.cancel(job.key).state == CANCELLED
        assert queue.next_job(timeout=0.05) is None  # skipped, not handed out
        running, _ = queue.submit(decode_request(tiny_sweep_body()))
        queue.next_job(timeout=1.0)
        assert queue.cancel(running.key).state == RUNNING  # left alone

    def test_unknown_job_raises(self):
        with pytest.raises(ServiceError, match="unknown job"):
            JobQueue().get("deadbeef")

    def test_stats_shape(self):
        queue = JobQueue()
        queue.submit(decode_request(tiny_run_body()))
        stats = queue.stats()
        assert stats["queue_depth"] == 1 and stats["in_flight"] == 0
        assert set(stats) == {"queue_depth", "in_flight", "submitted",
                              "coalesced", "store_hits", "executed", "failed",
                              "cancelled", "retries", "timeouts", "rejected",
                              "recovered", "jobs"}
        (entry,) = stats["jobs"]
        assert entry["state"] == QUEUED and entry["kind"] == "run"

    def test_stop_releases_blocked_workers(self):
        queue = JobQueue()
        seen = []
        worker = threading.Thread(target=lambda: seen.append(queue.next_job()))
        worker.start()
        queue.stop()
        worker.join(timeout=2.0)
        assert seen == [None] and not worker.is_alive()


# --------------------------------------------------------------------------- warm probe


class TestWarmProbe:
    def test_cold_store_and_no_store_probe_none(self):
        request = decode_request(tiny_run_body())
        assert probe_warm(request, None) is None
        assert probe_warm(request, ArtifactStore()) is None

    def test_cli_path_artifacts_answer_service_requests(self, tmp_path):
        """A store warmed by direct library calls serves all three kinds."""
        store = default_store(tmp_path / "cache")
        # run
        run_req = decode_request(tiny_run_body())
        trace = RunSpec(protocol=run_req.spec.protocol, n=3,
                        preferences=(1, 0, 1)).run(store=store)
        assert probe_warm(run_req, store) == render_result(run_req, trace)
        # theorem (what `repro-eba cache warm --n 3 --t 1` builds)
        report = implementation_check.check_theorem_6_5(3, 1, store=store)
        theorem_req = decode_request(theorem_request("6.5", 3, 1))
        assert probe_warm(theorem_req, store) == render_result(theorem_req, report)
        # sweep
        sweep_req = decode_request(tiny_sweep_body())
        results = sweep_req.spec.run(store=store)
        assert probe_warm(sweep_req, store) == render_result(sweep_req, results)


# --------------------------------------------------------------------------- server


@pytest.fixture
def server(tmp_path):
    with JobServer(port=0, workers=2,
                   store=default_store(tmp_path / "cache")) as running:
        yield running


@pytest.fixture
def client(server):
    return ServiceClient(server.url, timeout=10.0)


class TestJobServer:
    def test_healthz_and_default_port_constant(self, client):
        assert client.healthz() == {"ok": True}
        assert DEFAULT_PORT == 8322

    def test_submit_wait_fetch_run(self, client):
        payload = client.submit_and_wait(tiny_run_body(), timeout=60.0)
        assert payload["kind"] == "run" and payload["eba_ok"] is True
        assert "timeline" in payload and payload["protocol"] == "P_min"

    def test_submit_wait_fetch_theorem(self, client):
        payload = client.submit_and_wait(theorem_request("6.5", 3, 1),
                                         timeout=120.0)
        assert payload["holds"] is True and payload["checked_states"] > 0

    def test_resubmission_is_a_warm_hit(self, client):
        client.submit_and_wait(tiny_run_body(), timeout=60.0)
        receipt = client.submit(tiny_run_body())
        assert receipt["state"] == DONE
        assert receipt["hit"] is True and receipt["coalesced"] is False

    def test_malformed_submission_is_http_400(self, client):
        with pytest.raises(ServiceError, match="HTTP 400"):
            client.submit({"type": "run", "protocol": "nope", "t": 1, "n": 3,
                           "preferences": [1, 1, 1]})

    def test_unknown_job_is_http_404(self, client):
        with pytest.raises(ServiceError, match="HTTP 404"):
            client.status("deadbeef")
        with pytest.raises(ServiceError, match="HTTP 404"):
            client.result("deadbeef")

    def test_unknown_endpoint_is_http_404(self, client):
        with pytest.raises(ServiceError, match="HTTP 404"):
            client._request("GET", "/nope")

    def test_worker_exception_fails_job_but_server_survives(self, server, client,
                                                            monkeypatch):
        """Acceptance criterion: a crashing job never takes the service down."""
        import repro.service.workers as workers_mod
        real = workers_mod.execute_request

        def crash_theorems(request, executor=None, store=None):
            if request.kind == "theorem":
                raise RuntimeError("injected worker crash")
            return real(request, executor=executor, store=store)

        monkeypatch.setattr(workers_mod, "execute_request", crash_theorems)
        receipt = client.submit(theorem_request("6.5", 3, 1))
        with pytest.raises(ServiceError, match="injected worker crash"):
            client.wait(receipt["job"], poll_interval=0.01, timeout=30.0)
        assert client.status(receipt["job"])["state"] == FAILED
        # The server is still fully functional afterwards.
        assert client.healthz() == {"ok": True}
        payload = client.submit_and_wait(tiny_run_body(), timeout=60.0)
        assert payload["kind"] == "run"
        stats = client.stats()["service"]
        assert stats["failed"] == 1 and stats["executed"] == 1

    def test_stats_embeds_store_schema(self, client):
        client.submit_and_wait(tiny_run_body(), timeout=60.0)
        stats = client.stats()
        assert stats["workers"] == 2
        assert set(stats["store"]) == {"entries", "total_bytes", "by_kind",
                                       "session"}
        jobs = stats["service"]["jobs"]
        assert jobs and all(set(job) >= {"job", "kind", "state", "submissions"}
                            for job in jobs)

    def test_wait_timeout_raises_service_timeout(self, monkeypatch):
        import repro.service.workers as workers_mod
        gate = threading.Event()

        def block_until_released(request, executor=None, store=None):
            gate.wait(30.0)
            return {"kind": request.kind}

        monkeypatch.setattr(workers_mod, "execute_request", block_until_released)
        try:
            with JobServer(port=0, workers=1) as server:
                client = ServiceClient(server.url)
                receipt = client.submit(tiny_run_body())
                with pytest.raises(ServiceTimeout, match="still"):
                    client.wait(receipt["job"], poll_interval=0.01, timeout=0.25)
        finally:
            gate.set()  # release the worker so shutdown joins promptly

    def test_client_retries_then_reports_unreachable(self):
        client = ServiceClient("http://127.0.0.1:9", timeout=0.2,
                               retries=1, backoff=0.01)
        with pytest.raises(ServiceError, match="could not reach"):
            client.healthz()


class TestCoalescing:
    def test_concurrent_identical_submissions_execute_once(self, tmp_path):
        """The acceptance criterion, end to end against a cold store.

        Two threads submit the same sweep simultaneously.  Whatever the
        interleaving — coalesced onto the in-flight job, or a warm store hit
        if the first finished already — exactly ONE computation runs, and the
        fetched payloads are byte-identical to each other and to the direct
        library-path rendering.
        """
        store = default_store(tmp_path / "cache")
        body = tiny_sweep_body()
        with JobServer(port=0, workers=2, store=store) as server:
            client = ServiceClient(server.url)
            payloads = [None, None]

            def submit(slot):
                payloads[slot] = client.submit_and_wait(body, timeout=120.0)

            threads = [threading.Thread(target=submit, args=(slot,))
                       for slot in range(2)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120.0)
            stats = client.stats()["service"]

        assert stats["executed"] == 1, "identical submissions must run once"
        assert stats["submitted"] == 2
        assert stats["coalesced"] + stats["store_hits"] == 1
        first, second = payloads
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)
        # Byte-identical to the direct (CLI-path) computation of the same spec.
        request = decode_request(body)
        direct = render_result(request, request.spec.run(store=default_store(
            tmp_path / "fresh")))
        assert json.dumps(first, sort_keys=True) == json.dumps(direct, sort_keys=True)

    def test_many_submissions_one_wall_time_entry(self, tmp_path):
        store = default_store(tmp_path / "cache")
        body = theorem_request("6.5", 3, 1)
        with JobServer(port=0, workers=2, store=store) as server:
            client = ServiceClient(server.url)
            receipts = [client.submit(body) for _ in range(5)]
            assert len({receipt["job"] for receipt in receipts}) == 1
            client.wait(receipts[0]["job"], timeout=120.0)
            stats = client.stats()["service"]
        assert stats["executed"] == 1 and stats["submitted"] == 5
        assert stats["coalesced"] + stats["store_hits"] == 4
        (entry,) = [job for job in stats["jobs"] if job["state"] == DONE]
        assert entry["submissions"] == 5 and entry["wall_time"] >= 0
