"""Differential tests: the batched round-major engine vs the per-run engine.

The batched engine (:mod:`repro.simulation.batch`) promises traces that are
**byte-identical** (per-trace pickle) to :func:`repro.simulation.engine.simulate`'s
for every protocol, failure model, and scenario — and systems whose interned
partitions are identical to the per-run path's.  These tests enforce that
promise across the SO / RO / GO models and all three paper protocols, plus a
randomized scenario sweep, and pin the supporting behaviours: duplicate-pattern
rejection, executor batch fan-out, and the engine/symmetry knobs of
``build_system``.
"""

import pickle
import random

import pytest

from repro.api import ParallelExecutor, SerialExecutor
from repro.core.errors import ConfigurationError, ModelCheckingError
from repro.failures.models import (
    GeneralOmissionModel,
    ReceiveOmissionModel,
    SendingOmissionModel,
    make_model,
)
from repro.failures.pattern import FailurePattern
from repro.kbp import check_implements, make_p0
from repro.protocols import BasicProtocol, MinProtocol, OptimalFipProtocol
from repro.simulation.batch import BatchSimulator, execute_batches, simulate_batch
from repro.simulation.engine import simulate
from repro.systems import build_system, build_system_for_model, gamma_basic, gamma_min
from repro.workloads.preferences import enumerate_preferences

MODELS = ["sending-omission", "receive-omission", "general-omission"]

#: For the differential checks over full *context-horizon* systems, GO(1) at
#: n=3 is a 98 312-run system whose per-run oracle build alone takes ~20 s —
#: the exhaustive GO halves run in the weekly ``-m slow`` tier, like the other
#: exhaustive GO checks.
CONTEXT_MODELS = [
    "sending-omission",
    "receive-omission",
    pytest.param("general-omission", marks=pytest.mark.slow),
]


def _trace_bytes(traces):
    return [pickle.dumps(trace) for trace in traces]


class TestTraceByteIdentity:
    @pytest.mark.parametrize("model_name", MODELS)
    def test_exhaustive_n3_systems_are_byte_identical(self, model_name):
        """Every run of the full n=3 system, across the paper's two limited protocols."""
        model = make_model(model_name, n=3, t=1)
        patterns = list(model.enumerate(2))
        prefs = [tuple(p) for p in enumerate_preferences(3)]
        for protocol in (MinProtocol(1), BasicProtocol(1)):
            per_run = [simulate(protocol, 3, p, pattern=pattern, horizon=2)
                       for pattern in patterns for p in prefs]
            batched = BatchSimulator(protocol, 3).simulate_patterns(patterns, prefs, 2)
            assert _trace_bytes(batched) == _trace_bytes(per_run)

    def test_full_information_protocol_is_byte_identical(self):
        """E_fip's graph-valued messages and states survive batching unchanged."""
        model = SendingOmissionModel(n=3, t=1)
        patterns = list(model.enumerate(2))
        prefs = [tuple(p) for p in enumerate_preferences(3)]
        protocol = OptimalFipProtocol(1)
        per_run = [simulate(protocol, 3, p, pattern=pattern, horizon=3)
                   for pattern in patterns for p in prefs]
        batched = BatchSimulator(protocol, 3).simulate_patterns(patterns, prefs, 3)
        assert _trace_bytes(batched) == _trace_bytes(per_run)

    @pytest.mark.parametrize("protocol_factory", [MinProtocol, BasicProtocol, OptimalFipProtocol])
    def test_randomized_scenario_sweep(self, protocol_factory):
        """Random patterns from every edge-omission model, random preferences."""
        rng = random.Random(71)
        n, t, horizon = 4, 2, 4
        protocol = protocol_factory(t)
        scenarios = []
        for model in (SendingOmissionModel(n=n, t=t), ReceiveOmissionModel(n=n, t=t),
                      GeneralOmissionModel(n=n, t=t)):
            for _ in range(25):
                pattern = model.sample(rng, horizon, omission_probability=0.4)
                preferences = tuple(rng.randint(0, 1) for _ in range(n))
                scenarios.append((preferences, pattern))
        per_run = [simulate(protocol, n, prefs, pattern=pattern, horizon=horizon)
                   for prefs, pattern in scenarios]
        batched = simulate_batch(protocol, n, scenarios, horizon)
        assert _trace_bytes(batched) == _trace_bytes(per_run)

    def test_failure_free_default_and_zero_horizon(self):
        trace = simulate_batch(MinProtocol(1), 3, [((1, 1, 1), None)], 0)[0]
        assert trace.rounds == []
        assert trace.pattern == FailurePattern.failure_free(3)
        per_run = simulate(MinProtocol(1), 3, (1, 1, 1), horizon=0)
        assert pickle.dumps(trace) == pickle.dumps(per_run)


class TestEngineEquivalenceInBuildSystem:
    @pytest.mark.parametrize("model_name", CONTEXT_MODELS)
    def test_build_system_engines_agree(self, model_name):
        context = gamma_min(3, 1, failure_model=model_name)
        batched = context.build_system(MinProtocol(1))
        per_run = context.build_system(MinProtocol(1), engine="per-run")
        assert _trace_bytes(batched.runs) == _trace_bytes(per_run.runs)
        for agent in range(3):
            fast = batched.partition(agent)
            slow = per_run.partition(agent)
            assert fast.class_masks == slow.class_masks
            assert fast.class_states == slow.class_states
            assert fast.class_first_indices == slow.class_first_indices

    @pytest.mark.parametrize("model_name", CONTEXT_MODELS)
    def test_theorem_reports_identical_across_engines(self, model_name):
        """Theorem 6.5 / 6.6 verdicts cannot depend on the construction engine."""
        for claim_protocol, gamma in ((MinProtocol(1), gamma_min),
                                      (BasicProtocol(1), gamma_basic)):
            context = gamma(3, 1, failure_model=model_name)
            batched = check_implements(
                claim_protocol, make_p0(3), context,
                system=context.build_system(claim_protocol))
            per_run = check_implements(
                claim_protocol, make_p0(3), context,
                system=context.build_system(claim_protocol, engine="per-run"))
            assert repr(batched) == repr(per_run)
            assert batched.checked_states == per_run.checked_states
            assert [repr(m) for m in batched.mismatches] == [repr(m) for m in per_run.mismatches]

    def test_unknown_engine_rejected(self):
        with pytest.raises(ModelCheckingError, match="engine"):
            gamma_min(3, 1).build_system(MinProtocol(1), engine="turbo")


class TestExecutorBatchFanOut:
    def test_serial_and_parallel_batches_match_in_process_build(self):
        context = gamma_min(3, 1)
        reference = context.build_system(MinProtocol(1))
        serial = context.build_system(MinProtocol(1), executor=SerialExecutor())
        parallel = context.build_system(
            MinProtocol(1), executor=ParallelExecutor(max_workers=2, chunksize=1))
        assert _trace_bytes(serial.runs) == _trace_bytes(reference.runs)
        assert _trace_bytes(parallel.runs) == _trace_bytes(reference.runs)

    def test_run_tasks_only_executors_fall_back_to_per_run(self):
        class TasksOnly:
            def __init__(self):
                self.calls = 0

            def run_tasks(self, tasks):
                self.calls += 1
                return SerialExecutor().run_tasks(tasks)

        executor = TasksOnly()
        system = gamma_min(3, 1).build_system(MinProtocol(1), executor=executor)
        assert executor.calls == 1
        reference = gamma_min(3, 1).build_system(MinProtocol(1))
        assert _trace_bytes(system.runs) == _trace_bytes(reference.runs)

    def test_execute_batches_shares_a_simulator_across_chunks(self):
        protocol = MinProtocol(1)
        prefs = tuple(tuple(p) for p in enumerate_preferences(3))
        patterns = tuple(SendingOmissionModel(n=3, t=1).enumerate(2))
        split = len(patterns) // 2
        chunked = execute_batches([
            (protocol, 3, prefs, patterns[:split], 2),
            (protocol, 3, prefs, patterns[split:], 2),
        ])
        whole = execute_batches([(protocol, 3, prefs, patterns, 2)])
        assert _trace_bytes(chunked) == _trace_bytes(whole)


class TestValidation:
    def test_duplicate_pattern_rejected_naming_the_pattern(self):
        pattern = FailurePattern.silent(3, faulty=[0], horizon=2)
        patterns = [FailurePattern.failure_free(3), pattern, pattern]
        with pytest.raises(ModelCheckingError) as excinfo:
            build_system(MinProtocol(1), 3, 2, patterns)
        message = str(excinfo.value)
        assert "duplicate failure pattern" in message
        assert pattern.describe() in message
        assert "positions 1 and 2" in message

    def test_equal_but_distinct_pattern_objects_are_still_duplicates(self):
        first = FailurePattern.silent(3, faulty=[0], horizon=2)
        second = FailurePattern.silent(3, faulty=[0], horizon=2)
        assert first is not second
        with pytest.raises(ModelCheckingError, match="duplicate failure pattern"):
            build_system(MinProtocol(1), 3, 2, [first, second])

    def test_pattern_for_wrong_n_rejected(self):
        with pytest.raises(ConfigurationError, match="4 agents"):
            simulate_batch(MinProtocol(1), 3,
                           [((1, 1, 1), FailurePattern.failure_free(4))], 2)

    def test_negative_horizon_rejected(self):
        with pytest.raises(ConfigurationError, match="horizon"):
            simulate_batch(MinProtocol(1), 3, [((1, 1, 1), None)], -1)

    def test_bad_pattern_weights_rejected(self):
        patterns = [FailurePattern.failure_free(3)]
        with pytest.raises(ModelCheckingError, match="weights"):
            build_system(MinProtocol(1), 3, 2, patterns, pattern_weights=[1, 2])
        with pytest.raises(ModelCheckingError, match="positive"):
            build_system(MinProtocol(1), 3, 2, patterns, pattern_weights=[0])


class TestSymmetryModes:
    def test_expand_builds_the_same_pattern_set(self):
        model = SendingOmissionModel(n=3, t=1)
        full = build_system_for_model(MinProtocol(1), model, 2)
        expanded = build_system_for_model(MinProtocol(1), model, 2, symmetry="expand")
        assert len(expanded.runs) == len(full.runs)
        assert ({run.pattern for run in expanded.runs}
                == {run.pattern for run in full.runs})
        assert expanded.run_weights is None

    def test_reduce_records_exact_weighted_run_count(self):
        model = SendingOmissionModel(n=3, t=1)
        full = build_system_for_model(MinProtocol(1), model, 2)
        reduced = build_system_for_model(MinProtocol(1), model, 2, symmetry="reduce")
        assert len(reduced.runs) < len(full.runs)
        assert reduced.run_weights is not None
        assert reduced.weighted_run_count == full.weighted_run_count == len(full.runs)

    def test_unknown_symmetry_mode_rejected(self):
        with pytest.raises(ModelCheckingError, match="symmetry"):
            build_system_for_model(MinProtocol(1), SendingOmissionModel(n=3, t=1), 2,
                                   symmetry="fold")

    def test_reduced_system_keys_distinct_from_exhaustive(self, tmp_path):
        """A reduced build must not alias the plain build of the same patterns."""
        from repro.store import default_store
        store = default_store(tmp_path)
        model = SendingOmissionModel(n=3, t=1)
        orbits = list(model.enumerate_orbits(2))
        representatives = [orbit.representative for orbit in orbits]
        reduced = build_system_for_model(MinProtocol(1), model, 2,
                                         symmetry="reduce", store=store)
        plain = build_system(MinProtocol(1), 3, 2, representatives, store=store)
        assert reduced.run_weights is not None
        assert plain.run_weights is None
