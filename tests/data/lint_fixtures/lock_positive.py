"""Seeded LOCK violations: guarded state touched outside the lock."""

import threading


class Cache:
    _GUARDED_BY = {"_entries": "_lock", "_bytes": "_lock"}

    def __init__(self):
        self._lock = threading.Lock()
        self._entries = {}
        self._bytes = 0

    def put(self, key, value, size):
        with self._lock:
            self._entries[key] = value
        self._bytes += size  # LOCK001: outside the with block

    def snapshot(self):
        return dict(self._entries)  # LOCK001: no lock at all

    def register_callback(self, bus):
        with self._lock:
            # LOCK001: the closure may run after the lock is released
            bus.subscribe("evict", lambda event: self._entries.clear())


class EventBus:  # matches the built-in contract by class name
    def __init__(self):
        self._lock = threading.Lock()
        self._subscribers = {}

    def kinds(self):
        return list(self._subscribers)  # LOCK001 via the built-in config
