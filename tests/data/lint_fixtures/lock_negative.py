"""Correct lock discipline — nothing may fire here."""

import threading


class Cache:
    _GUARDED_BY = {"_entries": "_lock", "_bytes": "_lock"}

    def __init__(self):
        # __init__ is exempt: the object has not escaped yet.
        self._lock = threading.Lock()
        self._entries = {}
        self._bytes = 0

    def put(self, key, value, size):
        with self._lock:
            self._entries[key] = value
            self._bytes += size

    def snapshot(self):
        with self._lock:
            return dict(self._entries)

    def _evict_one_locked(self):
        # *_locked methods are exempt: the suffix is the caller-holds-lock
        # contract.
        self._entries.popitem()

    def unrelated(self):
        return self._lock.locked()  # the lock itself is not guarded
