"""The compliant twins of det_positive — nothing may fire here."""

import json
import random
from pathlib import Path


def serialize_members(members):
    return json.dumps({"members": sorted({1, 2, 3})})


def serialize_names(names):
    return ",".join(sorted(set(names)))


def pick_agent(agents, seed):
    rng = random.Random(seed)  # seeded instance RNG is fine anywhere
    return rng.choice(agents)


def scan_artifacts(root: Path):
    return [path.name for path in sorted(root.glob("*.json"))]


def walk_sources(root: Path):
    results = []
    for path in sorted(root.iterdir()):
        results.append(path)
    return results
