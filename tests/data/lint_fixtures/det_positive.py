"""Seeded DET violations — every rule in the family must fire here."""

import json
import random
from pathlib import Path


def serialize_members(members):
    # DET001: a set literal reaches json.dumps without sorted()
    return json.dumps({"members": list({1, 2, 3})})


def serialize_names(names):
    # DET001: set() constructor inside a join sink
    return ",".join(set(names))


def pick_agent(agents):
    # DET002: the unseeded global RNG
    return random.choice(agents)


def shuffle_rounds(rounds):
    # DET002: unseeded shuffle
    random.shuffle(rounds)
    return rounds


def scan_artifacts(root: Path):
    # DET003: OS-dependent directory order
    return [path.name for path in root.glob("*.json")]


def walk_sources(root: Path):
    results = []
    # DET003: iterdir in a for loop
    for path in root.iterdir():
        results.append(path)
    return results
