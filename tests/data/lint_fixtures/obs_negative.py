"""Compliant observability — nothing may fire here."""

import warnings

from repro.obs import metrics as _metrics
from repro.obs.logs import get_logger

_logger = get_logger("fixture")


def report(message):
    _logger.info("progress: %s", message)


def deprecate(message):
    # Deprecations are the sanctioned warnings.warn channel.
    warnings.warn(message, DeprecationWarning, stacklevel=2)


_M_DONE = _metrics.counter("repro_fixture_done_total", "completed items")
_M_DEPTH = _metrics.gauge("repro_fixture_depth", "current depth")
_M_WALL = _metrics.histogram("repro_fixture_wall_seconds", "wall time")
_M_SIZE = _metrics.histogram("repro_fixture_payload_bytes", "payload size")
