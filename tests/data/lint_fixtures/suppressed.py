"""Violations silenced by suppression comments — both placements."""

import json
import threading


def serialize_trailing(values):
    # The trailing form suppresses its own line.
    return json.dumps(list({1, 2}))  # repro-lint: disable=DET001 -- canonical downstream


def serialize_standalone(values):
    # repro-lint: disable=DET001 -- the consumer re-sorts this payload
    return json.dumps(list({3, 4}))


class Cache:
    _GUARDED_BY = {"_entries": "_lock"}

    def __init__(self):
        self._lock = threading.Lock()
        self._entries = {}

    def racy_len(self):
        # repro-lint: disable=LOCK
        return len(self._entries)
