"""Compliant API usage — nothing may fire here."""

from repro.simulation.engine import simulate


def direct_run(protocol, n, preferences, pattern):
    # The *engine's* simulate is the real implementation, not the shim;
    # import resolution must keep this clean.
    return simulate(protocol, n, preferences, pattern)


def measure_everything(tasks, executor=None):
    results = []
    for task in tasks:
        results.append(run_measurement(task, executor=executor))
    return results


def measure_positionally(tasks, executor=None):
    return [run_measurement(task, executor) for task in tasks]


def run_measurement(task, executor=None):
    return task
