"""Seeded API violations: deprecated shims and a dropped executor."""

from repro.simulation.runner import run_batch, simulate


def legacy_run(protocol, n, preferences, pattern):
    # API001: deprecated shim call (resolved through the import)
    return simulate(protocol, n, preferences, pattern)


def legacy_batch(protocol, n, scenarios):
    # API001: another deprecated entry point
    return run_batch(protocol, n, scenarios)


def legacy_engine(run_sweep, protocols, scenarios):
    # API001: the per-run engine era is over
    return run_sweep(protocols, scenarios, engine="per-run")


def measure_everything(tasks, executor=None):
    results = []
    for task in tasks:
        # API002: executor accepted above but not forwarded
        results.append(run_measurement(task))
    return results


def run_measurement(task, executor=None):
    return task
