"""Seeded OBS violations: bare output and bad metric names."""

import sys
import warnings

from repro.obs import metrics as _metrics


def report(message):
    print("progress:", message)  # OBS001: bare print in library code


def complain(message):
    warnings.warn(message)  # OBS001: non-deprecation warnings.warn


def shout(message):
    sys.stderr.write(message + "\n")  # OBS001: direct stderr write


# OBS002: missing repro_ prefix
_M_BAD_PREFIX = _metrics.counter("jobs_done_total", "no prefix")

# OBS002: counter without _total
_M_BAD_COUNTER = _metrics.counter("repro_jobs_done", "bad suffix")

# OBS002: gauge must not claim the counter suffix
_M_BAD_GAUGE = _metrics.gauge("repro_depth_total", "gauge as counter")

# OBS002: histogram without a base-unit suffix
_M_BAD_HISTOGRAM = _metrics.histogram("repro_job_wall", "no unit")
