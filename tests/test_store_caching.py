"""Integration tests for cache-aware execution (:mod:`repro.store.caching`).

The pipeline-level correctness properties:

* the :class:`CachingExecutor` serves hits, computes only misses, and
  preserves task order (so cached and uncached sweeps are byte-identical);
* ``RunSpec.run`` / ``SweepSpec.run`` with a store are warm-idempotent, and an
  interrupted sweep resumes at the first missing key (``missing_tasks``);
* ``build_system`` / ``check_implements`` / ``check_safety`` consult the
  store: warm reports are byte-identical to cold ones (Theorems 6.5 / 6.6),
  and mutating any key-relevant spec field forces a recompute;
* the CLI ``cache`` subcommand and ``--cache-dir`` flags drive the same store.
"""

from __future__ import annotations

from typing import List, Sequence

import pytest

from repro.api import RunSpec, SerialExecutor, Sweep
from repro.cli import main as cli_main
from repro.experiments import decision_rounds, implementation_check
from repro.failures import FailurePattern
from repro.kbp import check_implements, make_p0
from repro.kbp.safety import check_safety
from repro.protocols import BasicProtocol, MinProtocol
from repro.store import CachingExecutor, default_store
from repro.systems import build_system, gamma_basic, gamma_min
from repro.workloads import random_scenarios


class CountingExecutor:
    """A serial executor that records how many tasks it actually ran."""

    def __init__(self) -> None:
        self.tasks_run: List[tuple] = []
        self._inner = SerialExecutor()

    def run_tasks(self, tasks: Sequence[tuple]):
        self.tasks_run.extend(tasks)
        return self._inner.run_tasks(tasks)


@pytest.fixture
def store(tmp_path):
    return default_store(tmp_path / "cache")


# --------------------------------------------------------------------------- executor


class TestCachingExecutor:
    def test_miss_then_hit(self, store):
        inner = CountingExecutor()
        executor = CachingExecutor(store, inner)
        tasks = [(MinProtocol(1), 3, (1, 1, 0), FailurePattern.failure_free(3), None)]
        first = executor.run_tasks(tasks)
        second = executor.run_tasks(tasks)
        assert first == second
        assert len(inner.tasks_run) == 1  # the second call was a pure hit

    def test_partial_hits_preserve_order(self, store):
        scenarios = random_scenarios(3, 1, count=4, seed=5)
        tasks = [(MinProtocol(1), 3, prefs, pattern, None)
                 for prefs, pattern in scenarios]
        # Pre-cache tasks 1 and 3 only.
        CachingExecutor(store, CountingExecutor()).run_tasks([tasks[1], tasks[3]])
        inner = CountingExecutor()
        traces = CachingExecutor(store, inner).run_tasks(tasks)
        assert [task for task in inner.tasks_run] == [tasks[0], tasks[2]]
        reference = SerialExecutor().run_tasks(tasks)
        assert traces == reference  # order and content identical to uncached


class CountingBatchExecutor:
    """A serial executor recording whether work arrived batched or per-run."""

    def __init__(self) -> None:
        self.batches_run: List[tuple] = []
        self.tasks_run: List[tuple] = []

    def run_tasks(self, tasks: Sequence[tuple]):
        self.tasks_run.extend(tasks)
        return SerialExecutor().run_tasks(tasks)

    def run_batches(self, batches: Sequence[tuple]):
        self.batches_run.extend(batches)
        from repro.simulation.batch import execute_batches
        return execute_batches(batches)


def two_batches():
    """Two one-pattern batch work items over the same preference vectors."""
    prefs = ((1, 1, 1), (1, 0, 1))
    return [
        (MinProtocol(1), 3, prefs, (FailurePattern.failure_free(3),), 3),
        (MinProtocol(1), 3, prefs,
         (FailurePattern.silent(3, faulty=[0], horizon=3),), 3),
    ]


class TestCachingExecutorBatches:
    """``--cache`` must compose with the batched engine, not disable it.

    Before ``CachingExecutor.run_batches`` existed, ``build_system`` saw a
    ``run_tasks``-only executor whenever caching was on and silently fell back
    to per-run simulation — caching turned the batched engine off.
    """

    def test_batches_reach_the_inner_backend_as_batches(self, store):
        inner = CountingBatchExecutor()
        batches = two_batches()
        CachingExecutor(store, inner).run_batches(batches)
        assert inner.batches_run == batches
        assert inner.tasks_run == []  # never shattered into per-run tasks

    def test_miss_then_hit(self, store):
        from repro.simulation.batch import execute_batches
        batches = two_batches()
        first = CachingExecutor(store, CountingBatchExecutor()).run_batches(batches)
        inner = CountingBatchExecutor()
        second = CachingExecutor(store, inner).run_batches(batches)
        assert inner.batches_run == [] and inner.tasks_run == []
        assert first == second == execute_batches(batches)

    def test_partially_warm_batch_recomputes_whole(self, store):
        """A batch with any missing run re-runs whole: forwarding fragments
        would destroy the round-major sharing the batch engine exists for."""
        batch_a, batch_b = two_batches()
        CachingExecutor(store).run_batches([batch_a])
        # Warm exactly one of batch_b's runs through the per-task path.
        protocol, n, prefs, patterns, horizon = batch_b
        CachingExecutor(store).run_tasks([(protocol, n, prefs[0], patterns[0],
                                           horizon)])
        inner = CountingBatchExecutor()
        traces = CachingExecutor(store, inner).run_batches([batch_a, batch_b])
        assert inner.batches_run == [batch_b]
        from repro.simulation.batch import execute_batches
        assert traces == execute_batches([batch_a, batch_b])

    def test_batch_and_task_paths_share_keys(self, store):
        """Traces cached by ``run_tasks`` are hits for ``run_batches``."""
        batches = two_batches()
        tasks = [(protocol, n, preferences, pattern, horizon)
                 for protocol, n, prefs, patterns, horizon in batches
                 for pattern in patterns
                 for preferences in prefs]
        CachingExecutor(store).run_tasks(tasks)
        inner = CountingBatchExecutor()
        CachingExecutor(store, inner).run_batches(batches)
        assert inner.batches_run == [] and inner.tasks_run == []

    def test_run_tasks_only_inner_still_works(self, store):
        """An inner backend without ``run_batches`` gets flattened tasks."""
        from repro.simulation.batch import execute_batches
        inner = CountingExecutor()
        traces = CachingExecutor(store, inner).run_batches(two_batches())
        assert traces == execute_batches(two_batches())
        assert len(inner.tasks_run) == 4  # 2 batches x 2 preference vectors

    def test_build_system_keeps_batched_fanout_under_caching(self, store):
        """The regression pin: ``build_system`` with a ``CachingExecutor``
        dispatches batch work items, exactly like the uncached engine."""
        patterns = [FailurePattern.failure_free(3),
                    FailurePattern.silent(3, faulty=[0], horizon=3)]
        inner = CountingBatchExecutor()
        cold = build_system(MinProtocol(1), 3, 3, patterns,
                            executor=CachingExecutor(store, inner))
        assert inner.batches_run and not inner.tasks_run
        rerun_inner = CountingBatchExecutor()
        warm = build_system(MinProtocol(1), 3, 3, patterns,
                            executor=CachingExecutor(store, rerun_inner))
        assert rerun_inner.batches_run == [] and rerun_inner.tasks_run == []
        assert warm.runs == cold.runs


# --------------------------------------------------------------------------- specs


class TestSpecCaching:
    def test_runspec_warm_is_identical(self, store):
        spec = RunSpec(MinProtocol(1), 3, (1, 0, 1))
        cold = spec.run(store=store)
        warm = spec.run(store=store)
        assert cold == warm
        assert store.stats().hits >= 1

    def test_runspec_default_pattern_shares_sweep_key(self, store):
        """pattern=None and the sweep's explicit failure-free pattern must
        address the same cache entry (one run, one key)."""
        RunSpec(MinProtocol(1), 3, (1, 0, 1)).run(store=store)
        spec = (Sweep.of(MinProtocol(1))
                .on([((1, 0, 1), FailurePattern.failure_free(3))], n=3).build())
        assert spec.missing_tasks(store) == ()

    def test_sweep_warm_resultset_identical(self, store):
        sweep = (Sweep.of(MinProtocol(1), BasicProtocol(1))
                 .on_random(3, 1, count=4, seed=9))
        cold = sweep.run(store=store)
        warm = sweep.run(store=store)
        assert cold == warm  # ResultSet equality is structural over every trace
        assert warm == sweep.run()  # and identical to the uncached result

    def test_sweep_resume_restarts_at_first_missing_key(self, store):
        # Distinct scenarios by construction: random workloads may repeat a
        # scenario, and the content-addressed store would (correctly) dedup it.
        pattern = FailurePattern.failure_free(3)
        scenarios = [((int(bit) for bit in f"{index:03b}"), pattern)
                     for index in range(6)]
        spec = Sweep.of(MinProtocol(1)).on(scenarios, n=3).build()
        assert len(spec.missing_tasks(store)) == 6
        # Simulate an interrupted sweep: only the first 2 tasks completed.
        CachingExecutor(store).run_tasks(spec.tasks()[:2])
        missing = spec.missing_tasks(store)
        assert missing == spec.tasks()[2:]
        inner = CountingExecutor()
        spec.run(executor=inner, store=store)
        assert list(inner.tasks_run) == list(missing)  # resumed, not restarted

    def test_missing_tasks_without_store_is_everything(self):
        spec = Sweep.of(MinProtocol(1)).on_random(3, 1, count=3, seed=1).build()
        assert spec.missing_tasks(None) == spec.tasks()

    def test_spec_field_change_forces_recompute(self, store):
        base = Sweep.of(MinProtocol(1)).on_random(3, 1, count=2, seed=7)
        base.run(store=store)
        inner = CountingExecutor()
        base.with_horizon(4).run(executor=inner, store=store)
        assert len(inner.tasks_run) == 2  # different horizon => full recompute


# --------------------------------------------------------------------------- systems and reports


class TestModelCheckingCaching:
    def test_build_system_warm_equals_cold(self, store):
        context = gamma_min(3, 1)
        cold = context.build_system(MinProtocol(1), store=store)
        fresh_store = default_store(store.backend.root)  # disk path, no memory
        warm = context.build_system(MinProtocol(1), store=fresh_store)
        assert warm.n == cold.n and warm.horizon == cold.horizon
        assert warm.protocol_name == cold.protocol_name
        assert warm.runs == cold.runs
        stats = fresh_store.stats()
        assert (stats.hits, stats.misses) == (1, 0)

    def test_build_system_key_covers_patterns_and_preferences(self, store):
        patterns = [FailurePattern.failure_free(3)]
        build_system(MinProtocol(1), 3, 3, patterns, store=store)
        baseline_puts = store.stats().puts
        # Different preference set: must rebuild, not hit.
        build_system(MinProtocol(1), 3, 3, patterns,
                     preference_vectors=[(1, 1, 1)], store=store)
        assert store.stats().puts == baseline_puts + 1

    def test_theorem_reports_byte_identical_cold_vs_warm(self, store):
        """Theorem 6.5 / 6.6: the warm-cache report renders byte-identically."""
        cold = implementation_check.report(n=3, t=1, store=store)
        warm = implementation_check.report(n=3, t=1,
                                           store=default_store(store.backend.root))
        assert warm == cold
        assert "True" in cold

    def test_check_implements_spec_field_invalidation(self, store):
        check_implements(MinProtocol(1), make_p0(3), gamma_min(3, 1), store=store)
        puts_before = store.stats().puts
        # Different context horizon => different key => recompute.
        check_implements(MinProtocol(1), make_p0(3), gamma_min(3, 1, horizon=4),
                         store=store)
        assert store.stats().puts > puts_before
        # Different max_mismatches bound is also part of the key.
        puts_before = store.stats().puts
        check_implements(MinProtocol(1), make_p0(3), gamma_min(3, 1),
                         max_mismatches=3, store=store)
        assert store.stats().puts > puts_before

    def test_caller_supplied_system_bypasses_report_cache(self, store):
        context = gamma_min(3, 1)
        system = context.build_system(MinProtocol(1), store=store)
        hits_before = store.stats().hits
        report = check_implements(MinProtocol(1), make_p0(3), context,
                                  system=system, store=store)
        assert report.ok
        # No report was read from or written to the store for this call.
        assert store.stats().hits == hits_before
        assert store.stats().by_kind.get("implementation-report") is None

    def test_check_safety_warm_equals_cold(self, store):
        context = gamma_basic(3, 1)
        cold = check_safety(BasicProtocol(1), context, store=store)
        warm = check_safety(BasicProtocol(1), context,
                            store=default_store(store.backend.root))
        assert repr(warm) == repr(cold)
        assert warm.safe and warm.points_checked == cold.points_checked


# --------------------------------------------------------------------------- experiments and CLI


class TestSurfaceArea:
    def test_experiment_report_warm_identical(self, store):
        cold = decision_rounds.report(settings=((4, 1),), store=store)
        warm = decision_rounds.report(settings=((4, 1),),
                                      store=default_store(store.backend.root))
        assert warm == cold

    def test_cli_cache_warm_stats_clear(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cli-cache")
        assert cli_main(["cache", "warm", "--n", "3", "--t", "1",
                         "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "Theorem 6.5" in out and "ok" in out

        assert cli_main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "entries      : 4" in out
        assert "implementation-report: 2" in out

        assert cli_main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "deleted 4 entries" in capsys.readouterr().out
        assert cli_main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "entries      : 0" in capsys.readouterr().out

    def test_cli_experiment_cache_dir_flag(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cli-cache")
        assert cli_main(["experiment", "e2", "--n", "4", "--t", "1",
                         "--cache-dir", cache_dir]) == 0
        first = capsys.readouterr().out
        assert cli_main(["experiment", "e2", "--n", "4", "--t", "1",
                         "--cache-dir", cache_dir]) == 0
        second = capsys.readouterr().out
        assert first == second
        stats = default_store(cache_dir).stats()
        assert stats.entries > 0
