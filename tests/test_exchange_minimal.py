"""Unit tests for the minimal information exchange E_min."""

import pytest

from repro.core.errors import ProtocolError
from repro.core.types import DECIDE_0, DECIDE_1, NOOP
from repro.exchange import DecideNotification, MinimalExchange


@pytest.fixture
def exchange():
    return MinimalExchange(4)


class TestInitialState:
    def test_shape(self, exchange):
        state = exchange.initial_state(2, 1)
        assert state.agent == 2
        assert state.time == 0
        assert state.init == 1
        assert state.decided is None
        assert state.jd is None

    def test_rejects_non_binary_init(self, exchange):
        with pytest.raises(ValueError):
            exchange.initial_state(0, 2)


class TestMessages:
    def test_silent_on_noop(self, exchange):
        state = exchange.initial_state(0, 1)
        assert exchange.messages_for(state, NOOP) == (None,) * 4

    def test_broadcasts_decide_value(self, exchange):
        state = exchange.initial_state(0, 0)
        messages = exchange.messages_for(state, DECIDE_0)
        assert messages == (DecideNotification(0),) * 4
        messages = exchange.messages_for(state, DECIDE_1)
        assert messages == (DecideNotification(1),) * 4


class TestUpdate:
    def test_time_advances(self, exchange):
        state = exchange.initial_state(0, 1)
        updated = exchange.update(state, NOOP, (None,) * 4)
        assert updated.time == 1
        assert updated.init == 1

    def test_decision_is_recorded(self, exchange):
        state = exchange.initial_state(0, 0)
        updated = exchange.update(state, DECIDE_0, (None,) * 4)
        assert updated.decided == 0

    def test_jd_records_received_decision(self, exchange):
        state = exchange.initial_state(0, 1)
        received = (None, DecideNotification(1), None, None)
        updated = exchange.update(state, NOOP, received)
        assert updated.jd == 1

    def test_jd_prefers_zero(self, exchange):
        state = exchange.initial_state(0, 1)
        received = (None, DecideNotification(1), DecideNotification(0), None)
        updated = exchange.update(state, NOOP, received)
        assert updated.jd == 0

    def test_jd_resets_when_nothing_received(self, exchange):
        state = exchange.initial_state(0, 1)
        once = exchange.update(state, NOOP, (None, DecideNotification(0), None, None))
        assert once.jd == 0
        twice = exchange.update(once, NOOP, (None,) * 4)
        assert twice.jd is None

    def test_changing_a_decision_is_rejected(self, exchange):
        state = exchange.initial_state(0, 0)
        decided = exchange.update(state, DECIDE_0, (None,) * 4)
        with pytest.raises(ProtocolError):
            exchange.update(decided, DECIDE_1, (None,) * 4)

    def test_states_are_hashable_value_objects(self, exchange):
        a = exchange.update(exchange.initial_state(0, 1), NOOP, (None,) * 4)
        b = exchange.update(exchange.initial_state(0, 1), NOOP, (None,) * 4)
        assert a == b
        assert hash(a) == hash(b)
