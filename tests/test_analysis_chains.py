"""Unit tests for 0-chain extraction and the hears-from relation."""


from repro.analysis import (
    hears_from,
    hears_from_frontier,
    longest_zero_chain,
    received_zero_chain,
    zero_chains,
    zero_deciders_by_round,
)
from repro.failures import FailurePattern
from repro.protocols import MinProtocol, OptimalFipProtocol
from repro.simulation import simulate
from repro.workloads import all_ones, hidden_chain_scenario


class TestZeroDeciders:
    def test_failure_free_single_zero(self):
        trace = simulate(MinProtocol(1), 4, [0, 1, 1, 1])
        deciders = zero_deciders_by_round(trace)
        assert deciders[0] == frozenset({0})
        assert deciders[1] == frozenset({1, 2, 3})

    def test_no_zero_deciders_in_all_ones_run(self):
        trace = simulate(MinProtocol(1), 4, all_ones(4))
        assert zero_deciders_by_round(trace) == {}


class TestZeroChains:
    def test_chain_structure_in_failure_free_run(self):
        trace = simulate(MinProtocol(1), 4, [0, 1, 1, 1])
        chains = zero_chains(trace)
        lengths = {chain.last_agent: chain.length for chain in chains}
        assert lengths[0] == 0
        assert lengths[1] == 1
        assert all(chain.agents[0] == 0 for chain in chains)

    def test_hidden_chain_is_detected(self):
        preferences, pattern = hidden_chain_scenario(5, chain_length=2)
        trace = simulate(MinProtocol(2), 5, preferences, pattern)
        longest = longest_zero_chain(trace)
        assert longest is not None
        assert longest.agents[:3] == (0, 1, 2)
        assert longest.length >= 2

    def test_received_zero_chain_lookup(self):
        preferences, pattern = hidden_chain_scenario(5, chain_length=2)
        trace = simulate(MinProtocol(2), 5, preferences, pattern)
        assert received_zero_chain(trace, agent=2, time=2) is not None
        assert received_zero_chain(trace, agent=2, time=5) is None

    def test_no_chains_without_zero_decisions(self):
        trace = simulate(MinProtocol(1), 4, all_ones(4))
        assert zero_chains(trace) == []
        assert longest_zero_chain(trace) is None

    def test_chains_work_for_fip_traces(self):
        trace = simulate(OptimalFipProtocol(1), 4, [0, 1, 1, 1])
        lengths = {chain.last_agent: chain.length for chain in zero_chains(trace)}
        assert lengths[0] == 0
        assert lengths[2] == 1


class TestHearsFrom:
    def test_failure_free_everyone_hears_everyone(self):
        trace = simulate(MinProtocol(1), 4, all_ones(4), horizon=3)
        frontier = hears_from_frontier(trace, agent=0, time=2)
        assert frontier[0] == 2
        # With E_min nobody sends anything in an all-ones run before deciding,
        # so nothing is ever heard from the other agents.
        assert frontier[1] == -1

    def test_fip_frontier_tracks_deliveries(self):
        pattern = FailurePattern.silent(4, faulty=[3], horizon=4)
        trace = simulate(OptimalFipProtocol(1), 4, all_ones(4), pattern, horizon=3)
        frontier = hears_from_frontier(trace, agent=0, time=2)
        assert frontier[1] == 1
        assert frontier[3] == -1

    def test_hears_from_predicate(self):
        trace = simulate(OptimalFipProtocol(1), 4, all_ones(4), horizon=3)
        assert hears_from(trace, (1, 1), (0, 2))
        assert not hears_from(trace, (1, 2), (0, 2))
