"""Unit tests for P_basic (the basic-exchange action protocol)."""

import pytest

from repro.core.errors import ProtocolError
from repro.core.types import DECIDE_0, DECIDE_1, NOOP
from repro.exchange import BasicExchange
from repro.exchange.base import LocalState
from repro.exchange.basic import BasicLocalState
from repro.protocols import BasicProtocol


def state(agent=0, n=5, time=0, init=1, decided=None, jd=None, count_ones=0):
    return BasicLocalState(agent=agent, n=n, time=time, init=init, decided=decided,
                           jd=jd, count_ones=count_ones)


class TestRules:
    def test_decides_zero_on_initial_zero(self):
        assert BasicProtocol(2).act(state(init=0)) == DECIDE_0

    def test_decides_zero_on_jd_zero(self):
        assert BasicProtocol(2).act(state(time=2, jd=0)) == DECIDE_0

    def test_decides_one_when_enough_heartbeats(self):
        # n = 5, time = 1: the threshold is #1 > n - time = 4.
        assert BasicProtocol(2).act(state(time=1, count_ones=5)) == DECIDE_1
        assert BasicProtocol(2).act(state(time=1, count_ones=4)) == NOOP

    def test_threshold_loosens_over_time(self):
        protocol = BasicProtocol(2)
        assert protocol.act(state(time=2, count_ones=4)) == DECIDE_1
        assert protocol.act(state(time=3, count_ones=3)) == DECIDE_1
        assert protocol.act(state(time=3, count_ones=2)) == NOOP

    def test_decides_one_on_jd_one(self):
        assert BasicProtocol(2).act(state(time=2, jd=1)) == DECIDE_1

    def test_zero_rule_beats_one_rule(self):
        assert BasicProtocol(2).act(state(time=2, jd=0, count_ones=5)) == DECIDE_0

    def test_noop_after_decision(self):
        assert BasicProtocol(2).act(state(decided=1, time=3, count_ones=5)) == NOOP

    def test_initial_all_ones_does_not_decide_in_round_one(self):
        # At time 0 the counter is 0 and 0 > n - 0 is false.
        assert BasicProtocol(2).act(state(time=0, count_ones=0)) == NOOP


class TestConfiguration:
    def test_exchange_is_basic(self):
        assert isinstance(BasicProtocol(1).make_exchange(4), BasicExchange)

    def test_requires_basic_states(self):
        plain = LocalState(agent=0, n=4, time=0, init=1, decided=None, jd=None)
        with pytest.raises(ProtocolError):
            BasicProtocol(1).act(plain)
