"""Tests for the declarative spec layer: RunSpec, SweepSpec, and the Sweep builder."""

import random

import pytest

from repro.api import RunSpec, Sweep, SweepSpec
from repro.core.errors import ConfigurationError
from repro.failures import FailurePattern
from repro.protocols import BasicProtocol, MinProtocol, OptimalFipProtocol
from repro.workloads import random_scenarios


class TestRunSpec:
    def test_run_produces_the_engine_trace(self):
        trace = RunSpec(MinProtocol(1), n=4, preferences=(0, 1, 1, 1)).run()
        assert trace.protocol_name == "P_min"
        assert trace.decision_value(0) == 0

    def test_preferences_are_validated_and_frozen(self):
        spec = RunSpec(MinProtocol(1), n=4, preferences=[0, 1, 1, 1])
        assert spec.preferences == (0, 1, 1, 1)
        with pytest.raises(ConfigurationError):
            RunSpec(MinProtocol(1), n=4, preferences=(0, 1))

    def test_pattern_size_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            RunSpec(MinProtocol(1), n=4, preferences=(1, 1, 1, 1),
                    pattern=FailurePattern.failure_free(5))

    def test_spec_is_frozen(self):
        spec = RunSpec(MinProtocol(1), n=4, preferences=(1, 1, 1, 1))
        with pytest.raises(AttributeError):
            spec.n = 5

    def test_as_sweep_round_trips(self):
        spec = RunSpec(MinProtocol(1), n=4, preferences=(0, 1, 1, 1))
        results = spec.as_sweep().run()
        assert results.only() == spec.run()


class TestSweepSpecValidation:
    def test_duplicate_protocol_names_raise_configuration_error(self):
        scenarios = random_scenarios(4, 1, count=1)
        with pytest.raises(ConfigurationError, match="P_min"):
            SweepSpec(protocols=(MinProtocol(1), MinProtocol(2)), n=4,
                      scenarios=tuple(scenarios))

    def test_all_colliding_names_are_reported(self):
        scenarios = tuple(random_scenarios(4, 1, count=1))
        with pytest.raises(ConfigurationError) as excinfo:
            SweepSpec(protocols=(MinProtocol(1), MinProtocol(2),
                                 BasicProtocol(1), BasicProtocol(2)),
                      n=4, scenarios=scenarios)
        assert "P_min" in str(excinfo.value)
        assert "P_basic" in str(excinfo.value)

    def test_empty_protocols_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(protocols=(), n=4, scenarios=tuple(random_scenarios(4, 1, count=1)))

    def test_scenario_pattern_size_mismatch_rejected(self):
        bad = ((1, 1, 1, 1), FailurePattern.failure_free(5))
        with pytest.raises(ConfigurationError):
            SweepSpec(protocols=(MinProtocol(1),), n=4, scenarios=(bad,))

    def test_task_order_is_protocol_major_and_deterministic(self):
        scenarios = tuple(random_scenarios(4, 1, count=3))
        spec = SweepSpec(protocols=(MinProtocol(1), BasicProtocol(1)), n=4,
                         scenarios=scenarios)
        tasks = spec.tasks()
        assert len(tasks) == len(spec) == 6
        assert [task[0].name for task in tasks] == ["P_min"] * 3 + ["P_basic"] * 3
        assert tasks == spec.tasks()


class TestSweepBuilder:
    def test_fluent_build_matches_direct_construction(self):
        scenarios = tuple(random_scenarios(4, 1, count=2, seed=3))
        built = (Sweep.of(MinProtocol(1), OptimalFipProtocol(1))
                 .on(scenarios).with_horizon(4).build())
        direct = SweepSpec(protocols=(MinProtocol(1), OptimalFipProtocol(1)),
                           n=4, scenarios=scenarios, horizon=4)
        assert built.protocol_names == direct.protocol_names
        assert built.scenarios == direct.scenarios
        assert built.horizon == direct.horizon == 4

    def test_n_inferred_from_workload(self):
        spec = Sweep.of(MinProtocol(1)).on(random_scenarios(5, 1, count=2)).build()
        assert spec.n == 5

    def test_builder_steps_do_not_mutate_the_receiver(self):
        base = Sweep.of(MinProtocol(1))
        with_workload = base.on(random_scenarios(4, 1, count=1))
        with_horizon = with_workload.with_horizon(3)
        assert base._scenarios is None
        assert with_workload._horizon is None
        assert with_horizon._horizon == 3
        # A shared prefix can be forked without cross-talk.
        forked = with_workload.with_horizon(7)
        assert with_horizon._horizon == 3
        assert forked._horizon == 7

    def test_builder_without_workload_rejected(self):
        with pytest.raises(ConfigurationError):
            Sweep.of(MinProtocol(1)).build()

    def test_on_clears_a_previously_recorded_seed(self):
        sweep = (Sweep.of(MinProtocol(1))
                 .on_random(4, 1, count=2, seed=5)
                 .on(random_scenarios(4, 1, count=1)))
        assert sweep.build().seed is None

    def test_on_random_records_the_seed(self):
        spec = Sweep.of(MinProtocol(1)).on_random(4, 1, count=3, seed=9).build()
        assert spec.seed == 9
        assert len(spec.scenarios) == 3

    def test_seed_determinism_of_on_random(self):
        first = Sweep.of(MinProtocol(1)).on_random(4, 1, count=5, seed=11).build()
        second = Sweep.of(MinProtocol(1)).on_random(4, 1, count=5, seed=11).build()
        other = Sweep.of(MinProtocol(1)).on_random(4, 1, count=5, seed=12).build()
        assert first.scenarios == second.scenarios
        assert first.scenarios != other.scenarios
        # ... and identical workloads produce identical results.
        assert first.run() == second.run()


class TestRandomInstanceSeeding:
    def test_random_instance_gives_deterministic_independent_streams(self):
        first = random_scenarios(4, 1, count=4, seed=random.Random(21))
        again = random_scenarios(4, 1, count=4, seed=random.Random(21))
        other = random_scenarios(4, 1, count=4, seed=random.Random(22))
        assert first == again
        assert first != other

    def test_random_instance_stream_advances(self):
        rng = random.Random(33)
        first = random_scenarios(4, 1, count=2, seed=rng)
        second = random_scenarios(4, 1, count=2, seed=rng)
        assert first != second

    def test_int_seed_behaviour_unchanged(self):
        assert random_scenarios(4, 1, count=3, seed=7) == random_scenarios(4, 1, count=3, seed=7)
