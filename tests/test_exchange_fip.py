"""Unit tests for the full-information exchange E_fip."""

import pytest

from repro.core.types import DECIDE_1, NOOP
from repro.exchange import DecideNotification, FullInformationExchange, GraphMessage
from repro.exchange.fip import FipLocalState


@pytest.fixture
def exchange():
    return FullInformationExchange(3)


class TestMessages:
    def test_broadcasts_graph_regardless_of_action(self, exchange):
        state = exchange.initial_state(0, 1)
        for action in (NOOP, DECIDE_1):
            messages = exchange.messages_for(state, action)
            assert len(messages) == 3
            assert all(isinstance(m, GraphMessage) for m in messages)
            assert all(m.graph == state.graph for m in messages)

    def test_graph_message_bits_match_graph(self, exchange):
        state = exchange.initial_state(1, 0)
        message = exchange.messages_for(state, NOOP)[0]
        assert exchange.message_bits(message) == state.graph.bit_size()


class TestUpdate:
    def test_non_graph_messages_are_ignored_for_the_graph(self, exchange):
        state = exchange.initial_state(0, 1)
        received = (DecideNotification(0), None, None)
        updated = exchange.update(state, NOOP, received)
        # The decide notification is not a graph, so it contributes no labels
        # beyond the direct this-message-arrived observation of slot 0...
        assert updated.graph.time == 1
        # ...but jd still reflects the decide notification (EBA-context bookkeeping).
        assert updated.jd == 0

    def test_update_advances_graph_and_time_together(self, exchange):
        state = exchange.initial_state(2, 1)
        peers = [exchange.initial_state(agent, 1) for agent in range(3)]
        received = tuple(GraphMessage(peer.graph) for peer in peers)
        updated = exchange.update(state, NOOP, received)
        assert updated.time == 1
        assert updated.graph.time == 1
        assert updated.graph.known_preferences() == {0: 1, 1: 1, 2: 1}

    def test_decision_recorded_in_state(self, exchange):
        state = exchange.initial_state(0, 1)
        updated = exchange.update(state, DECIDE_1, (None, None, None))
        assert updated.decided == 1

    def test_dropped_messages_recorded_as_blocked(self, exchange):
        state = exchange.initial_state(0, 1)
        peer = exchange.initial_state(1, 0)
        received = (GraphMessage(state.graph), None, GraphMessage(peer.graph))
        updated = exchange.update(state, NOOP, received)
        assert updated.graph.label(0, 1, 0) is False
        assert updated.graph.label(0, 2, 0) is True

    def test_states_are_value_objects(self, exchange):
        a = exchange.update(exchange.initial_state(0, 1), NOOP, (None, None, None))
        b = exchange.update(exchange.initial_state(0, 1), NOOP, (None, None, None))
        assert a == b
        assert hash(a) == hash(b)


class TestStateValidation:
    def test_graph_is_required(self):
        with pytest.raises(ValueError):
            FipLocalState(agent=0, n=3, time=0, init=1, decided=None, jd=None, graph=None)
