"""The docs stay honest: README doctests run, relative links resolve.

CI's docs job runs the same two checks standalone (``python -m doctest`` and
``tools/check_links.py``); running them in tier-1 as well means a PR cannot
land with a rotted quickstart or a dangling link even before CI.
"""

import doctest
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_links  # noqa: E402


class TestReadmeDoctests:
    def test_readme_examples_run(self):
        results = doctest.testfile(str(REPO_ROOT / "README.md"),
                                   module_relative=False, verbose=False)
        assert results.failed == 0, f"{results.failed} README doctest(s) failed"
        assert results.attempted > 0, "README should contain runnable examples"

    def test_quickstart_example_runs_clean(self):
        """The README's quickstart mirror (examples/quickstart.py) stays runnable."""
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(REPO_ROOT / "src")] +
            ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
        proc = subprocess.run(
            [sys.executable, "-W", "error::DeprecationWarning",
             str(REPO_ROOT / "examples" / "quickstart.py")],
            capture_output=True, text=True, timeout=120, env=env,
        )
        assert proc.returncode == 0, proc.stderr
        assert "EBA spec : OK" in proc.stdout


class TestDocLinks:
    def test_all_relative_markdown_links_resolve(self):
        problems = []
        for path in check_links.iter_markdown_files():
            problems.extend(check_links.broken_links(path))
        assert not problems, "\n".join(problems)

    def test_the_expected_docs_exist(self):
        for name in ("README.md", "docs/architecture.md", "docs/performance.md",
                     "docs/observability.md", "docs/static-analysis.md"):
            assert (REPO_ROOT / name).exists(), name

    def test_expected_pages_match_check_links(self):
        """tools/check_links.py's EXPECTED_PAGES is the same roster."""
        for name in check_links.EXPECTED_PAGES:
            assert (REPO_ROOT / name).exists(), name
        assert "docs/observability.md" in check_links.EXPECTED_PAGES
        assert "docs/static-analysis.md" in check_links.EXPECTED_PAGES
