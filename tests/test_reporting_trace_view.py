"""Unit tests for the trace / communication-graph renderers."""

import pytest

from repro.failures import FailurePattern
from repro.protocols import BasicProtocol, MinProtocol, OptimalFipProtocol
from repro.reporting import render_comm_graph, render_decision_timeline, render_run
from repro.simulation import simulate


@pytest.fixture
def trace():
    pattern = FailurePattern.silent(4, faulty=[0], horizon=4)
    return simulate(MinProtocol(1), 4, [1, 1, 1, 0], pattern)


class TestRenderRun:
    def test_contains_rounds_and_decisions(self, trace):
        text = render_run(trace)
        assert "round 1:" in text
        assert "agent 3 decides 0" in text
        assert "P_min" in text
        assert "faulty=[0]" in text

    def test_dropped_messages_marked(self, trace):
        text = render_run(trace)
        # Agent 0 is silent: its decide message in round 2 is sent but dropped.
        assert "x" in text

    def test_max_rounds_limits_output(self, trace):
        full = render_run(trace)
        truncated = render_run(trace, max_rounds=1)
        assert len(truncated) < len(full)
        assert "round 2:" not in truncated.split("agent 0")[0]

    def test_heartbeats_rendered_for_basic_exchange(self):
        trace = simulate(BasicProtocol(1), 3, [1, 1, 1])
        assert "h" in render_run(trace)

    def test_graph_messages_rendered_for_fip(self):
        trace = simulate(OptimalFipProtocol(1), 3, [1, 1, 1])
        assert "G" in render_run(trace)


class TestDecisionTimeline:
    def test_marks_faulty_agents(self, trace):
        text = render_decision_timeline(trace)
        assert "agent 0*" in text
        assert "(* = faulty agent)" in text

    def test_shows_rounds_and_values(self, trace):
        text = render_decision_timeline(trace)
        assert "decided 0 in round 1" in text

    def test_reports_undecided_agents(self):
        trace = simulate(MinProtocol(2), 4, [1, 1, 1, 1], horizon=1)
        assert "never decides" in render_decision_timeline(trace)

    def test_no_faulty_marker_without_failures(self):
        trace = simulate(MinProtocol(1), 3, [0, 1, 1])
        assert "(* = faulty agent)" not in render_decision_timeline(trace)


class TestCommGraphView:
    def test_renders_preferences_and_rounds(self):
        trace = simulate(OptimalFipProtocol(1), 3, [1, 0, 1], horizon=2)
        graph = trace.state_of(0, 2).graph
        text = render_comm_graph(graph, owner=0)
        assert "agent 0" in text
        assert "known initial preferences: 0:1, 1:0, 2:1" in text
        assert "round 1 deliveries" in text
        assert "round 2 deliveries" in text

    def test_unknown_labels_rendered_as_question_marks(self):
        pattern = FailurePattern.silent(3, faulty=[2], horizon=3)
        trace = simulate(OptimalFipProtocol(1), 3, [1, 1, 1], pattern, horizon=2)
        graph = trace.state_of(0, 1).graph
        text = render_comm_graph(graph)
        assert "?" in text
        assert "0" in text
