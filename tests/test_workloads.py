"""Unit tests for workload generators (preferences and scenarios)."""

import pytest

from repro.workloads import (
    all_ones,
    all_zeros,
    enumerate_preferences,
    example_7_1,
    failure_free_scenarios,
    hidden_chain_scenario,
    intro_counterexample,
    random_preferences,
    random_scenarios,
    silent_fault_sweep,
    single_one,
    single_zero,
    with_zero_fraction,
)


class TestPreferenceGenerators:
    def test_uniform_vectors(self):
        assert all_zeros(3) == (0, 0, 0)
        assert all_ones(3) == (1, 1, 1)

    def test_single_dissenters(self):
        assert single_zero(4, holder=2) == (1, 1, 0, 1)
        assert single_one(4, holder=0) == (1, 0, 0, 0)

    def test_zero_fraction(self):
        assert with_zero_fraction(4, 0.5) == (0, 0, 1, 1)
        assert with_zero_fraction(4, 0.0) == (1, 1, 1, 1)
        assert with_zero_fraction(4, 1.0) == (0, 0, 0, 0)

    def test_enumeration_is_complete_and_unique(self):
        vectors = list(enumerate_preferences(3))
        assert len(vectors) == 8
        assert len(set(vectors)) == 8
        assert all(len(v) == 3 for v in vectors)

    def test_random_preferences_reproducible(self):
        assert random_preferences(5, 4, seed=1) == random_preferences(5, 4, seed=1)
        assert random_preferences(5, 4, seed=1) != random_preferences(5, 4, seed=2)

    def test_random_preferences_respect_probability_extremes(self):
        assert all(v == (0,) * 4 for v in random_preferences(4, 5, zero_probability=1.0))
        assert all(v == (1,) * 4 for v in random_preferences(4, 5, zero_probability=0.0))


class TestScenarios:
    def test_example_7_1_shape(self):
        preferences, pattern = example_7_1(n=8, t=3)
        assert preferences == (1,) * 8
        assert pattern.faulty == frozenset({0, 1, 2})
        assert pattern.silent_senders(0) == frozenset({0, 1, 2})

    def test_intro_counterexample_shape(self):
        preferences, pattern = intro_counterexample(n=4, t=1)
        assert preferences == (0, 1, 1, 1)
        assert pattern.faulty == frozenset({0})
        # The reveal happens in round t + 1 = 2 to the confidant only.
        assert pattern.delivered(1, 0, 2)
        assert not pattern.delivered(1, 0, 1)

    def test_hidden_chain_scenario_bounds(self):
        with pytest.raises(ValueError):
            hidden_chain_scenario(3, chain_length=3)
        preferences, pattern = hidden_chain_scenario(5, chain_length=2)
        assert preferences[0] == 0
        assert pattern.faulty == frozenset({0, 1})

    def test_failure_free_scenarios_are_labelled(self):
        scenarios = failure_free_scenarios(4)
        labels = [label for label, _ in scenarios]
        assert "all agents prefer 1" in labels
        assert all(pattern.num_faulty == 0 for _, (_, pattern) in scenarios)

    def test_random_scenarios_reproducible_and_bounded(self):
        first = random_scenarios(5, 2, count=6, seed=3)
        second = random_scenarios(5, 2, count=6, seed=3)
        assert first == second
        assert all(pattern.num_faulty <= 2 for _, pattern in first)
        assert all(len(prefs) == 5 for prefs, _ in first)

    def test_silent_fault_sweep_covers_zero_to_t(self):
        sweep = silent_fault_sweep(6, 2)
        counts = [k for k, _ in sweep]
        assert counts == [0, 1, 2]
        for k, (_, pattern) in sweep:
            assert pattern.num_faulty == k
