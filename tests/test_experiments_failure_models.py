"""Tests for experiment E12 (failure-model comparison) and its CLI subcommand.

The theorem half encodes the facts the experiment uncovered at n=3, t=1:
Theorem 6.5 (``P_min`` implements ``P0``) survives the receive-omission model,
while Theorem 6.6 (``P_basic`` implements ``P0``) acquires counterexamples —
the knowledge-based program decides strictly earlier than ``P_basic``.  The
(heavier) general-omission counterpart of the same checks lives in
``test_slow_model_checking.py``.
"""

import pytest

from repro.cli import main
from repro.experiments import failure_model_comparison as fmc


class TestModelWorkload:
    def test_each_model_gets_its_named_adversaries(self):
        so = fmc.model_workload("sending-omission", 4, 1, count=3, seed=5)
        ro = fmc.model_workload("receive-omission", 4, 1, count=3, seed=5)
        go = fmc.model_workload("general-omission", 4, 1, count=3, seed=5)
        assert len(so) == 3
        assert len(ro) == 4      # + silent receiver
        assert len(go) == 5      # + partition + mixed chain
        crash = fmc.model_workload("crash", 4, 1, count=3, seed=5)
        assert len(crash) == 4   # + staircase

    def test_workloads_are_admissible_under_their_model(self):
        from repro.failures import make_model
        for key in ("sending-omission", "receive-omission", "general-omission", "crash"):
            model = make_model(key, 4, 1)
            for _prefs, pattern in fmc.model_workload(key, 4, 1, count=3, seed=5):
                assert model.admits(pattern), (key, pattern.describe())


class TestBehaviourSweep:
    def test_paper_protocols_stay_correct_across_models(self):
        rows = fmc.measure_behaviour(n=4, t=1, count=4, seed=7)
        assert len(rows) == 9    # 3 models x 3 protocols
        for row in rows:
            assert row.agreement_violations == 0, row
            assert row.validity_violations == 0, row
            assert row.termination_violations == 0, row
            assert row.worst_decision_round <= row.t + 2


class TestTheoremChecks:
    def test_so_baseline_holds(self):
        rows = fmc.check_theorems("sending-omission", n=3, t=1)
        assert [row.holds for row in rows] == [True, True]

    def test_ro_keeps_6_5_but_breaks_6_6(self):
        rows = fmc.check_theorems("receive-omission", n=3, t=1)
        by_claim = {row.claim: row for row in rows}
        assert by_claim["Theorem 6.5: P_min implements P0"].holds
        basic = by_claim["Theorem 6.6: P_basic implements P0"]
        assert not basic.holds
        assert basic.mismatches > 0


class TestTheoremCheckModelCoercion:
    def test_instances_are_reinstantiated_at_the_theorem_size(self):
        from repro.failures import ReceiveOmissionModel

        rows = fmc.check_theorems(ReceiveOmissionModel(n=4, t=1), n=3, t=1)
        assert all(row.n == 3 for row in rows)
        assert all(row.model == "RO(1)" for row in rows)

    def test_measure_accepts_instances_built_for_the_sweep_size(self):
        from repro.failures import ReceiveOmissionModel

        behaviour, theorems = fmc.measure(
            n=4, t=1, models=[ReceiveOmissionModel(n=4, t=1)], count=2, seed=3,
            theorem_n=3, theorem_t=1)
        assert {row.model for row in behaviour} == {"RO(1)"}
        assert len(theorems) == 2


class TestReport:
    def test_report_renders_both_tables(self):
        text = fmc.report(n=3, t=1, models=("sending-omission", "receive-omission"),
                          count=2, seed=3, theorem_n=3, theorem_t=1)
        assert "protocol behaviour per failure model" in text
        assert "Theorem 6.5 / 6.6" in text
        assert "RO(1)" in text
        assert "False" in text   # the broken 6.6 check is visible

    def test_report_can_skip_theorems(self):
        text = fmc.report(n=3, t=1, models=("receive-omission",), count=2,
                          include_theorems=False)
        assert "Theorem 6.5 / 6.6" not in text
        # No theorem table -> no claims about theorem outcomes either.
        assert "implements P0" not in text

    def test_report_conclusion_matches_what_was_checked(self):
        text = fmc.report(n=3, t=1, models=("sending-omission",), count=2,
                          theorem_n=3, theorem_t=1)
        assert "Every checked claim holds" in text
        assert "counterexample state" not in text


class TestCli:
    def test_failure_models_subcommand(self, capsys):
        code = main(["failure-models", "--model", "receive-omission",
                     "--n", "3", "--t", "1", "--count", "2", "--skip-theorems"])
        captured = capsys.readouterr()
        assert code == 0
        assert "RO(1)" in captured.out
        assert "SO(1)" in captured.out   # the baseline rides along

    def test_failure_free_is_not_a_comparison_choice(self, capsys):
        # The failure-free model has no adversaries (and no failure bound), so
        # the subcommand refuses it at parse time instead of erroring later.
        with pytest.raises(SystemExit):
            main(["failure-models", "--model", "failure-free"])

    def test_e12_registered(self, capsys):
        code = main(["list"])
        captured = capsys.readouterr()
        assert code == 0
        assert "e12" in captured.out
