"""Unit tests for repro.failures.pattern."""

import pytest

from repro.core.errors import FailureModelError
from repro.failures import FailurePattern


class TestConstruction:
    def test_failure_free(self):
        pattern = FailurePattern.failure_free(4)
        assert pattern.faulty == frozenset()
        assert pattern.nonfaulty == frozenset({0, 1, 2, 3})
        assert pattern.num_faulty == 0
        assert pattern.delivered(0, 0, 1)

    def test_only_faulty_agents_may_omit(self):
        with pytest.raises(FailureModelError):
            FailurePattern(n=3, faulty=frozenset(), omissions=frozenset({(0, 1, 2)}))

    def test_negative_round_rejected(self):
        with pytest.raises(FailureModelError):
            FailurePattern(n=3, faulty=frozenset({1}), omissions=frozenset({(-1, 1, 2)}))

    def test_out_of_range_agents_rejected(self):
        with pytest.raises(FailureModelError):
            FailurePattern(n=3, faulty=frozenset({1}), omissions=frozenset({(0, 1, 5)}))

    def test_from_blocked_infers_faulty_set(self):
        pattern = FailurePattern.from_blocked(4, [(0, 2, 1), (1, 2, 3)], extra_faulty=[0])
        assert pattern.faulty == frozenset({0, 2})
        assert not pattern.delivered(0, 2, 1)
        assert pattern.delivered(0, 2, 0)


class TestSilent:
    def test_silent_blocks_everything_but_self(self):
        pattern = FailurePattern.silent(4, faulty=[1], horizon=3)
        for round_index in range(3):
            for receiver in range(4):
                expected = receiver == 1
                assert pattern.delivered(round_index, 1, receiver) is expected

    def test_silent_senders_detection(self):
        pattern = FailurePattern.silent(4, faulty=[1, 2], horizon=2)
        assert pattern.silent_senders(0) == frozenset({1, 2})
        assert pattern.silent_senders(5) == frozenset()


class TestQueries:
    def test_blocked_receivers(self):
        pattern = FailurePattern.from_blocked(4, [(0, 1, 2), (0, 1, 3), (1, 1, 2)])
        assert pattern.blocked_receivers(0, 1) == frozenset({2, 3})
        assert pattern.blocked_receivers(1, 1) == frozenset({2})
        assert pattern.blocked_receivers(0, 2) == frozenset()

    def test_exhibits_faulty_behaviour(self):
        visible = FailurePattern.from_blocked(3, [(0, 1, 2)])
        assert visible.exhibits_faulty_behaviour(1)
        assert not visible.exhibits_faulty_behaviour(0)

    def test_self_omission_is_not_visible_behaviour(self):
        pattern = FailurePattern(n=3, faulty=frozenset({1}),
                                 omissions=frozenset({(0, 1, 1)}))
        assert not pattern.exhibits_faulty_behaviour(1)

    def test_exhibits_faulty_behaviour_respects_horizon(self):
        pattern = FailurePattern.from_blocked(3, [(5, 1, 2)])
        assert not pattern.exhibits_faulty_behaviour(1, horizon=3)
        assert pattern.exhibits_faulty_behaviour(1, horizon=6)

    def test_max_round(self):
        assert FailurePattern.failure_free(3).max_round() == -1
        assert FailurePattern.from_blocked(3, [(2, 1, 0), (4, 1, 2)]).max_round() == 4


class TestTransformations:
    def test_with_and_without_omission(self):
        base = FailurePattern(n=3, faulty=frozenset({2}))
        extended = base.with_omission(1, 2, 0)
        assert not extended.delivered(1, 2, 0)
        restored = extended.without_omission(1, 2, 0)
        assert restored.delivered(1, 2, 0)
        assert restored.faulty == frozenset({2})

    def test_with_faulty_marks_agent(self):
        pattern = FailurePattern.failure_free(3).with_faulty(1)
        assert pattern.faulty == frozenset({1})
        assert not pattern.exhibits_faulty_behaviour(1)

    def test_swap_roles_exchanges_failures(self):
        pattern = FailurePattern.from_blocked(4, [(0, 1, 2), (1, 1, 3)])
        swapped = pattern.swap_roles(1, 0)
        assert swapped.faulty == frozenset({0})
        assert not swapped.delivered(0, 0, 2)
        assert not swapped.delivered(1, 0, 3)
        assert swapped.delivered(0, 1, 2)

    def test_swap_roles_is_involutive(self):
        pattern = FailurePattern.from_blocked(4, [(0, 1, 2)], extra_faulty=[3])
        assert pattern.swap_roles(1, 3).swap_roles(1, 3) == pattern

    def test_restrict_to_horizon(self):
        pattern = FailurePattern.from_blocked(3, [(0, 1, 2), (5, 1, 0)])
        restricted = pattern.restrict_to(3)
        assert not restricted.delivered(0, 1, 2)
        assert restricted.delivered(5, 1, 0)
        assert restricted.faulty == pattern.faulty


class TestValueSemantics:
    def test_equality_and_hash(self):
        a = FailurePattern.from_blocked(3, [(0, 1, 2)])
        b = FailurePattern.from_blocked(3, [(0, 1, 2)])
        assert a == b
        assert hash(a) == hash(b)

    def test_describe_mentions_faulty_agents(self):
        pattern = FailurePattern.from_blocked(3, [(0, 1, 2)])
        assert "1" in pattern.describe()
        assert "failure-free" in FailurePattern.failure_free(3).describe()

    def test_iteration_yields_sorted_omissions(self):
        pattern = FailurePattern.from_blocked(3, [(1, 2, 0), (0, 2, 1)])
        assert list(pattern) == [(0, 2, 1), (1, 2, 0)]
