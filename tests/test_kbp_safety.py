"""Tests for the Definition 6.2 safety-condition checker (Proposition 6.4)."""


from repro.kbp.safety import check_safety
from repro.protocols import BasicProtocol, MinProtocol
from repro.protocols.baselines import NaiveZeroBiasedProtocol
from repro.systems import gamma_basic, gamma_min


class TestProposition64:
    def test_p0_is_safe_in_gamma_min(self):
        report = check_safety(MinProtocol(1), gamma_min(3, 1))
        assert report.safe
        assert report.points_checked > 0
        assert report.clause1_checks > 0
        assert report.clause2_checks > 0
        assert "safe" in repr(report)

    def test_p0_is_safe_in_gamma_basic(self):
        report = check_safety(BasicProtocol(1), gamma_basic(3, 1))
        assert report.safe

    def test_reuses_a_prebuilt_system(self):
        context = gamma_min(3, 1)
        system = context.build_system(MinProtocol(1))
        report = check_safety(MinProtocol(1), context, system=system)
        assert report.safe


class TestSafetyIsNotVacuous:
    def test_gossiping_initial_values_breaks_clause_one(self):
        """A protocol whose exchange leaks ``∃0`` without a chain is not safe.

        Over the full-information exchange an agent can learn about a 0 from a
        faulty agent's graph without any 0-chain reaching it, so clause 1 of
        Definition 6.2 must fail — this is exactly the paper's remark that a
        knowledge-based program is in general *not* safe with respect to an
        FIP.
        """
        context = gamma_min(3, 1, max_faulty_enumerated=1)
        report = check_safety(NaiveZeroBiasedProtocol(1), context)
        assert not report.safe
        assert any(violation.clause == 1 for violation in report.violations)

    def test_violations_are_capped(self):
        context = gamma_min(3, 1, max_faulty_enumerated=1)
        report = check_safety(NaiveZeroBiasedProtocol(1), context, max_violations=3)
        assert len(report.violations) == 3
