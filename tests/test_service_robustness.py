"""Tests for the service's supervision layer (backpressure, retry, timeout,
cooperative cancel, client retry semantics, SIGTERM).

Fault injection comes from :mod:`repro.testing.faults`; custom protocols are
registered into the wire namespace per-test with ``monkeypatch.setitem``, so
worker threads (same process) decode them while the registry stays pristine
for every other test.
"""

from __future__ import annotations

import json
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

import pytest

from repro.core.errors import ServiceError, ServiceUnavailable
from repro.service import (
    JobQueue,
    JobServer,
    ServiceClient,
    decode_request,
    run_request,
    sweep_request,
    wire,
)
from repro.service.jobs import CANCELLED, QUEUED, RUNNING
from repro.store import ArtifactStore
from repro.testing import FailOnceProtocol, ServerHarness, SlowProtocol

ROOT = Path(__file__).resolve().parent.parent


def run_body(preferences=(1, 0, 1)):
    return run_request("min", 1, 3, list(preferences))


def wait_for(predicate, timeout=20.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


# ------------------------------------------------------------------ backpressure


class TestBackpressure:
    def test_queue_rejects_beyond_the_bound(self):
        queue = JobQueue(max_queue=1)
        queue.submit(decode_request(run_body((1, 0, 1))))
        with pytest.raises(ServiceUnavailable) as info:
            queue.submit(decode_request(run_body((0, 1, 1))))
        assert info.value.retry_after > 0
        assert queue.rejected == 1
        # The rejected submission was never admitted anywhere.
        assert queue.submitted == 1
        assert queue.stats()["queue_depth"] == 1

    def test_duplicate_of_a_live_job_is_never_rejected(self):
        """Coalescing wins over backpressure: a duplicate costs nothing."""
        queue = JobQueue(max_queue=1)
        job, _ = queue.submit(decode_request(run_body()))
        again, coalesced = queue.submit(decode_request(run_body()))
        assert again is job and coalesced

    def test_cancelled_jobs_free_their_backpressure_slot(self):
        """A burst of cancellations must not 503 fresh submissions.

        Cancelling a queued job leaves its key in the pending deque (it is
        only skipped at pickup); the depth must count live QUEUED jobs, not
        stale keys, or cancelled jobs keep occupying max_queue slots until a
        worker happens to drain them.
        """
        queue = JobQueue(max_queue=1)
        job, _ = queue.submit(decode_request(run_body((1, 0, 1))))
        queue.cancel(job.key)
        fresh, _ = queue.submit(decode_request(run_body((0, 1, 1))))
        assert fresh.state == QUEUED and queue.rejected == 0
        # The stale key is skipped at pickup; the fresh job is served.
        assert queue.next_job(timeout=1.0) is fresh

    def test_http_503_with_retry_after(self, monkeypatch):
        monkeypatch.setitem(wire.PROTOCOL_FACTORIES, "slow",
                            lambda t: SlowProtocol(t, delay=0.2))
        with JobServer(port=0, workers=1, max_queue=1) as server:
            client = ServiceClient(server.url, retries=0)
            blocker = client.submit(run_request("slow", 1, 3, [1, 0, 1]))
            assert wait_for(lambda: client.status(blocker["job"])["state"]
                            == RUNNING)
            client.submit(run_body((1, 1, 0)))  # fills the queue
            with pytest.raises(ServiceError, match="HTTP 503"):
                client.submit(run_body((0, 0, 1)))
            assert server.queue.rejected == 1


# ------------------------------------------------------------------ retry / timeout


class TestRetryAndTimeout:
    def test_retryable_failure_retries_then_succeeds(self, tmp_path, monkeypatch):
        sentinel = tmp_path / "fail-once"
        monkeypatch.setitem(wire.PROTOCOL_FACTORIES, "failonce",
                            lambda t: FailOnceProtocol(t, sentinel))
        with JobServer(port=0, workers=1, task_retries=2,
                       retry_backoff=0.01) as server:
            client = ServiceClient(server.url)
            payload = client.submit_and_wait(
                run_request("failonce", 1, 3, [1, 0, 1]), timeout=60.0)
            assert payload["kind"] == "run"
            stats = server.queue.stats()
            assert stats["retries"] == 1 and stats["failed"] == 0
            (entry,) = stats["jobs"]
            assert entry["attempts"] == 2

    def test_retry_budget_exhaustion_fails_with_the_error(self, tmp_path,
                                                          monkeypatch):
        """A protocol that fails on *every* attempt exhausts the budget."""
        class AlwaysFail(SlowProtocol):
            def act(self, state):
                raise OSError("disk on fire")

        monkeypatch.setitem(wire.PROTOCOL_FACTORIES, "alwaysfail",
                            lambda t: AlwaysFail(t))
        with JobServer(port=0, workers=1, task_retries=1,
                       retry_backoff=0.01) as server:
            client = ServiceClient(server.url)
            with pytest.raises(ServiceError, match="disk on fire"):
                client.submit_and_wait(
                    run_request("alwaysfail", 1, 3, [1, 0, 1]), timeout=60.0)
            stats = server.queue.stats()
            assert stats["retries"] == 1 and stats["failed"] == 1

    def test_non_retryable_failure_fails_immediately(self, monkeypatch):
        class Broken(SlowProtocol):
            def act(self, state):
                raise ValueError("a bug, not weather")

        monkeypatch.setitem(wire.PROTOCOL_FACTORIES, "broken",
                            lambda t: Broken(t))
        with JobServer(port=0, workers=1, task_retries=3,
                       retry_backoff=0.01) as server:
            client = ServiceClient(server.url)
            with pytest.raises(ServiceError, match="a bug, not weather"):
                client.submit_and_wait(
                    run_request("broken", 1, 3, [1, 0, 1]), timeout=60.0)
            assert server.queue.retries == 0  # never retried

    def test_job_timeout_fails_the_job_not_the_server(self, monkeypatch):
        monkeypatch.setitem(wire.PROTOCOL_FACTORIES, "slow",
                            lambda t: SlowProtocol(t, delay=1.0))
        with JobServer(port=0, workers=1, job_timeout=0.3) as server:
            client = ServiceClient(server.url)
            with pytest.raises(ServiceError, match="wall-clock"):
                client.submit_and_wait(run_request("slow", 1, 3, [1, 0, 1]),
                                       timeout=60.0)
            assert server.queue.timeouts == 1
            # The server keeps serving ordinary jobs afterwards.
            assert client.submit_and_wait(run_body(), timeout=60.0)["kind"] == "run"

    def test_timed_out_job_is_retried_when_budget_allows(self, monkeypatch):
        """First attempt times out, the retry (fast protocol) succeeds —
        pinned via a protocol whose slowness is sentinel-controlled."""
        calls = {"count": 0}

        class SlowOnce(SlowProtocol):
            def act(self, state):
                if calls["count"] == 0:
                    calls["count"] = 1  # flag first, so the retry runs fast
                    time.sleep(2.0)  # blow the first attempt's budget
                return super(SlowProtocol, self).act(state)

        monkeypatch.setitem(wire.PROTOCOL_FACTORIES, "slowonce",
                            lambda t: SlowOnce(t, delay=0.0))
        with JobServer(port=0, workers=1, job_timeout=0.5, task_retries=1,
                       retry_backoff=0.01) as server:
            client = ServiceClient(server.url)
            payload = client.submit_and_wait(
                run_request("slowonce", 1, 3, [1, 0, 1]), timeout=60.0)
            assert payload["kind"] == "run"
            stats = server.queue.stats()
            assert stats["timeouts"] == 1 and stats["retries"] == 1


# ------------------------------------------------------------------ running-job cancel


class TestCooperativeCancel:
    def test_cancel_a_running_sweep(self, monkeypatch):
        monkeypatch.setitem(wire.PROTOCOL_FACTORIES, "slow",
                            lambda t: SlowProtocol(t, delay=0.05))
        body = sweep_request([("slow", 1)],
                             workload={"n": 3, "t": 1, "count": 12, "seed": 0})
        with JobServer(port=0, workers=1, store=ArtifactStore()) as server:
            client = ServiceClient(server.url)
            job_id = client.submit(body)["job"]
            assert wait_for(lambda: client.status(job_id)["state"] == RUNNING)
            receipt = client.cancel(job_id)
            # Cooperative: still running, but flagged.
            assert receipt["state"] in (RUNNING, CANCELLED)
            if receipt["state"] == RUNNING:
                assert receipt["cancel_requested"] is True
            assert wait_for(lambda: client.status(job_id)["state"] == CANCELLED)
            assert server.queue.cancelled == 1
            # The worker is free again: a fresh job completes.
            assert client.submit_and_wait(run_body(), timeout=60.0)["kind"] == "run"


# ------------------------------------------------------------------ client retries


class _ScriptedHandler(BaseHTTPRequestHandler):
    """Serves a pre-programmed list of (status, headers, payload) responses."""

    def _serve(self):
        script = self.server.script  # type: ignore[attr-defined]
        self.server.hits += 1  # type: ignore[attr-defined]
        status, headers, payload = (script.pop(0) if script
                                    else (200, {}, {"ok": True}))
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    do_GET = do_POST = _serve

    def log_message(self, *args):  # quiet
        pass


@pytest.fixture()
def scripted_server():
    server = ThreadingHTTPServer(("127.0.0.1", 0), _ScriptedHandler)
    server.script = []
    server.hits = 0
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()


class TestClientRetries:
    def url(self, server):
        host, port = server.server_address[:2]
        return f"http://{host}:{port}"

    def test_5xx_is_retried_until_success(self, scripted_server):
        scripted_server.script[:] = [
            (500, {}, {"error": "transient"}),
            (502, {}, {"error": "still transient"}),
            (200, {}, {"ok": True}),
        ]
        client = ServiceClient(self.url(scripted_server), retries=3,
                               backoff=0.01)
        assert client.healthz() == {"ok": True}
        assert scripted_server.hits == 3

    def test_503_retry_after_is_honoured(self, scripted_server):
        scripted_server.script[:] = [
            (503, {"Retry-After": "0.2"}, {"error": "queue full"}),
            (200, {}, {"job": "k", "state": "queued", "coalesced": False,
                       "hit": False}),
        ]
        client = ServiceClient(self.url(scripted_server), retries=2,
                               backoff=5.0)  # backoff would be way too slow
        started = time.monotonic()
        receipt = client.submit({"type": "run"})
        elapsed = time.monotonic() - started
        assert receipt["job"] == "k"
        # Retry-After (0.2s) replaced the 5s backoff...
        assert elapsed < 3.0
        # ...but some pause happened.
        assert elapsed >= 0.15

    def test_4xx_is_never_retried(self, scripted_server):
        scripted_server.script[:] = [(400, {}, {"error": "malformed"})]
        client = ServiceClient(self.url(scripted_server), retries=5,
                               backoff=0.01)
        with pytest.raises(ServiceError, match="HTTP 400"):
            client.healthz()
        assert scripted_server.hits == 1

    def test_404_is_never_retried(self, scripted_server):
        scripted_server.script[:] = [(404, {}, {"error": "no such job"})]
        client = ServiceClient(self.url(scripted_server), retries=5,
                               backoff=0.01)
        with pytest.raises(ServiceError, match="HTTP 404"):
            client.status("nope")
        assert scripted_server.hits == 1

    def test_5xx_budget_exhaustion_raises(self, scripted_server):
        scripted_server.script[:] = [(500, {}, {"error": "down"})] * 10
        client = ServiceClient(self.url(scripted_server), retries=2,
                               backoff=0.01)
        with pytest.raises(ServiceError, match="HTTP 500"):
            client.healthz()
        assert scripted_server.hits == 3  # 1 try + 2 retries

    def test_result_500_is_not_retried(self, scripted_server):
        """A failed job's 500 is an answer, not an outage: result() must
        raise immediately instead of sleeping through the retry budget."""
        scripted_server.script[:] = [(500, {}, {"error": "the traceback"})] * 6
        client = ServiceClient(self.url(scripted_server), retries=5,
                               backoff=5.0)  # retrying would stall for ages
        with pytest.raises(ServiceError, match="HTTP 500"):
            client.result("k")
        assert scripted_server.hits == 1

    def test_expect_errors_short_circuits_retries(self, scripted_server):
        scripted_server.script[:] = [(500, {}, {"error": "the traceback"})]
        client = ServiceClient(self.url(scripted_server), retries=5,
                               backoff=0.01)
        payload = client._request("GET", "/jobs/k/result", expect_errors=True)
        assert payload == {"error": "the traceback"}
        assert scripted_server.hits == 1


# ------------------------------------------------------------------ SIGTERM


class TestSigterm:
    def test_sigterm_shuts_down_gracefully(self, tmp_path):
        harness = ServerHarness(ROOT, workers=1)
        with harness:
            url = harness.start()
            client = ServiceClient(url, retries=3, backoff=0.1)
            assert client.healthz() == {"ok": True}
            code = harness.kill(sig=signal.SIGTERM)
        assert code == 0
