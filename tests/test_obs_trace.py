"""Tests for the span tracer (:mod:`repro.obs.trace`).

The contracts that matter:

* the record schema is **pinned** — the golden file committed when the schema
  was introduced must validate forever (bump ``SCHEMA_VERSION`` and add a new
  golden file to change it), and freshly written traces must carry exactly
  the pinned key sets;
* arbitrary JSON-safe attributes survive the emit → read round trip
  (hypothesis);
* spans nest via the thread-local stack, and an exception inside a span still
  pops the stack and records the error;
* disabled tracing is free: ``span()`` hands back the shared no-op singleton
  and no file is touched;
* spans from forked workers merge into the parent's trace file
  (``ParallelExecutor`` fan-out → one file, multiple pids).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import trace as obs_trace

GOLDEN = Path(__file__).parent / "data" / "trace_golden.jsonl"


@pytest.fixture(autouse=True)
def _tracing_off():
    """Every test starts and ends with tracing disabled."""
    obs_trace.disable()
    yield
    obs_trace.disable()


class TestSchema:
    def test_golden_file_validates(self):
        """Old traces must stay readable: the schema is pinned by this file."""
        records = obs_trace.read_trace(GOLDEN)
        assert len(records) == 9
        assert sum(record["type"] == "meta" for record in records) == 2
        assert {record["pid"] for record in records} == {4242, 4243}

    def test_fresh_trace_has_exactly_the_pinned_keys(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        obs_trace.enable(path)
        with obs_trace.span("alpha", "cat", {"n": 3}):
            obs_trace.event("tick", "cat", {"k": 1})
        obs_trace.disable()
        records = [json.loads(line) for line in path.read_text().splitlines()]
        meta, event, span = records
        assert set(meta) == set(obs_trace.META_KEYS)
        assert meta["version"] == obs_trace.SCHEMA_VERSION
        assert set(event) == set(obs_trace.SPAN_KEYS)
        assert set(span) == set(obs_trace.SPAN_KEYS)
        # Every line is sorted-keys JSON — the byte-level half of the pin.
        for line, record in zip(path.read_text().splitlines(), records):
            assert line == json.dumps(record, sort_keys=True)

    def test_validate_rejects_key_drift(self):
        records = obs_trace.read_trace(GOLDEN)
        span = next(r for r in records if r["type"] == "span")
        extra = dict(span, surprise=1)
        with pytest.raises(ValueError, match="unexpected"):
            obs_trace.validate_record(extra)
        missing = {k: v for k, v in span.items() if k != "dur"}
        with pytest.raises(ValueError, match="missing"):
            obs_trace.validate_record(missing)
        with pytest.raises(ValueError, match="version"):
            obs_trace.validate_record(
                {**next(r for r in records if r["type"] == "meta"),
                 "version": obs_trace.SCHEMA_VERSION + 1})

    @settings(max_examples=50, deadline=None)
    @given(name=st.text(min_size=1, max_size=30).filter(str.strip),
           cat=st.sampled_from(["", "build", "check", "exec", "service"]),
           attrs=st.dictionaries(
               st.text(min_size=1, max_size=10),
               st.one_of(st.integers(min_value=-10**9, max_value=10**9),
                         st.floats(allow_nan=False, allow_infinity=False,
                                   width=32),
                         st.booleans(), st.none(),
                         st.text(max_size=20)),
               max_size=5))
    def test_roundtrip_preserves_names_and_attrs(self, tmp_path_factory,
                                                 name, cat, attrs):
        path = tmp_path_factory.mktemp("trace") / "roundtrip.jsonl"
        obs_trace.enable(path)
        with obs_trace.span(name, cat, dict(attrs)):
            pass
        obs_trace.disable()
        records = obs_trace.read_trace(path)  # validates every line
        span = records[-1]
        assert span["name"] == name
        assert span["cat"] == cat
        assert span["attrs"] == attrs
        assert span["dur"] >= 0


class TestNesting:
    def test_parentage_follows_the_stack(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        obs_trace.enable(path)
        with obs_trace.span("outer"):
            with obs_trace.span("inner"):
                obs_trace.event("blip")
        with obs_trace.span("sibling"):
            pass
        obs_trace.disable()
        by_name = {record["name"]: record
                   for record in obs_trace.read_trace(path)
                   if record["type"] != "meta"}
        outer, inner = by_name["outer"], by_name["inner"]
        assert outer["parent"] is None
        assert inner["parent"] == outer["id"]
        assert by_name["blip"]["parent"] == inner["id"]
        assert by_name["sibling"]["parent"] is None

    def test_exception_pops_the_stack_and_marks_the_span(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        obs_trace.enable(path)
        with pytest.raises(RuntimeError):
            with obs_trace.span("doomed"):
                raise RuntimeError("boom")
        with obs_trace.span("after"):
            pass
        obs_trace.disable()
        by_name = {record["name"]: record
                   for record in obs_trace.read_trace(path)
                   if record["type"] == "span"}
        assert by_name["doomed"]["attrs"]["error"] == "RuntimeError"
        # The failed span did not leak a stale parent onto the stack.
        assert by_name["after"]["parent"] is None

    def test_complete_records_retroactively(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        obs_trace.enable(path)
        obs_trace.complete("late", 10.0, 12.5, "service", {"k": 1})
        obs_trace.complete("clamped", 20.0, 19.0)  # end < start clamps to 0
        obs_trace.disable()
        spans = {record["name"]: record
                 for record in obs_trace.read_trace(path)
                 if record["type"] == "span"}
        assert spans["late"]["ts"] == 10.0 and spans["late"]["dur"] == 2.5
        assert spans["clamped"]["dur"] == 0.0

    def test_traced_decorator(self, tmp_path):
        @obs_trace.traced(cat="demo")
        def work(x):
            return x * 2

        assert work(3) == 6  # disabled: plain call, nothing recorded
        path = tmp_path / "trace.jsonl"
        obs_trace.enable(path)
        assert work(4) == 8
        obs_trace.disable()
        spans = [record for record in obs_trace.read_trace(path)
                 if record["type"] == "span"]
        assert [span["name"] for span in spans] == [work.__qualname__]


class TestDisabledIsFree:
    def test_span_returns_the_shared_noop_singleton(self):
        assert not obs_trace.is_active()
        first = obs_trace.span("anything", "cat", {"ignored": True})
        second = obs_trace.span("other")
        assert first is obs_trace.NOOP
        assert second is obs_trace.NOOP
        with first as handle:
            handle.set("k", "v")  # no-ops, no state

    def test_event_and_complete_are_noops(self, tmp_path):
        obs_trace.event("nothing")
        obs_trace.complete("nothing", 0.0, 1.0)
        assert list(tmp_path.iterdir()) == []  # nothing wrote anywhere

    def test_disabled_span_overhead_is_small(self):
        """50k disabled span entries must be effectively instant — the
        guard is one global comparison plus the shared singleton."""
        import time
        start = time.perf_counter()
        for _ in range(50_000):
            if obs_trace.is_active():  # the hot-path guard idiom
                with obs_trace.span("hot", "x", {"i": 0}):
                    pass
            else:
                with obs_trace.span("hot"):
                    pass
        elapsed = time.perf_counter() - start
        assert elapsed < 1.0  # generous CI bound; typical is ~20ms


class TestForkMerge:
    def test_parallel_executor_spans_merge_into_one_file(self, tmp_path):
        """Forked pool workers inherit the tracer and append to the same
        file; the parent's trace ends up holding every process's spans."""
        from repro.api.executors import ParallelExecutor
        from repro.api.scans import fork_available

        if not fork_available():  # pragma: no cover - non-POSIX platforms
            pytest.skip("fork start method unavailable")
        from repro.failures import FailurePattern
        from repro.protocols import MinProtocol

        # A RunTask is the executors' plain tuple shape:
        # (protocol, n, preferences, pattern, horizon).
        tasks = [(MinProtocol(1), 3,
                  (bits >> 2 & 1, bits >> 1 & 1, bits & 1),
                  FailurePattern.failure_free(3), None)
                 for bits in range(8)]
        path = tmp_path / "trace.jsonl"
        obs_trace.enable(path)
        try:
            executor = ParallelExecutor(max_workers=2, chunksize=1)
            results = executor.run_tasks(tasks)
        finally:
            obs_trace.disable()
        assert len(results) == 8
        records = obs_trace.read_trace(path)  # every line schema-valid
        chunk_spans = [record for record in records
                       if record["type"] == "span"
                       and record["name"] == "exec.chunk"]
        assert len(chunk_spans) == 8  # chunksize=1: one span per task
        worker_pids = {span["pid"] for span in chunk_spans}
        assert os.getpid() not in worker_pids
        assert len(worker_pids) >= 2
        # Each writing process anchored itself with a meta line.
        meta_pids = {record["pid"] for record in records
                     if record["type"] == "meta"}
        assert worker_pids <= meta_pids
        map_span = next(record for record in records
                        if record["type"] == "span"
                        and record["name"] == "exec.map_chunks")
        assert map_span["pid"] == os.getpid()
        assert map_span["attrs"]["chunks"] == 8
