"""Unit tests for repro.core.types."""

import pytest

from repro.core.types import (
    Action,
    ActionKind,
    DECIDE_0,
    DECIDE_1,
    NOOP,
    decide,
    other_value,
    validate_preferences,
    validate_value,
)


class TestAction:
    def test_decide_carries_value(self):
        action = decide(1)
        assert action.is_decision
        assert action.value == 1
        assert action.kind is ActionKind.DECIDE

    def test_noop_is_not_a_decision(self):
        assert not NOOP.is_decision
        assert NOOP.value is None

    def test_decide_rejects_non_binary_values(self):
        with pytest.raises(ValueError):
            decide(2)
        with pytest.raises(ValueError):
            Action(ActionKind.DECIDE, None)

    def test_noop_rejects_a_value(self):
        with pytest.raises(ValueError):
            Action(ActionKind.NOOP, 0)

    def test_actions_are_value_objects(self):
        assert decide(0) == DECIDE_0
        assert decide(1) == DECIDE_1
        assert decide(0) != decide(1)
        assert hash(decide(0)) == hash(DECIDE_0)

    def test_repr_is_readable(self):
        assert repr(decide(0)) == "decide(0)"
        assert repr(NOOP) == "noop"


class TestValueHelpers:
    def test_other_value_flips(self):
        assert other_value(0) == 1
        assert other_value(1) == 0

    def test_other_value_rejects_junk(self):
        with pytest.raises(ValueError):
            other_value(3)

    def test_validate_value_accepts_binary(self):
        assert validate_value(0) == 0
        assert validate_value(1) == 1

    def test_validate_value_rejects_non_binary(self):
        with pytest.raises(ValueError):
            validate_value(-1)


class TestPreferenceVectors:
    def test_validate_normalizes_to_tuple(self):
        assert validate_preferences([0, 1, 1], 3) == (0, 1, 1)

    def test_validate_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            validate_preferences([0, 1], 3)

    def test_validate_rejects_non_binary_entries(self):
        with pytest.raises(ValueError):
            validate_preferences([0, 1, 2], 3)
