"""Unit tests for P_min (the minimal-exchange action protocol)."""

import pytest

from repro.core.errors import ConfigurationError, ProtocolError
from repro.core.types import DECIDE_0, DECIDE_1, NOOP
from repro.exchange import BasicExchange, MinimalExchange
from repro.exchange.base import LocalState
from repro.protocols import MinProtocol


def state(agent=0, n=4, time=0, init=1, decided=None, jd=None):
    return LocalState(agent=agent, n=n, time=time, init=init, decided=decided, jd=jd)


class TestRules:
    def test_decides_zero_on_initial_zero(self):
        assert MinProtocol(1).act(state(init=0)) == DECIDE_0

    def test_decides_zero_on_jd_zero(self):
        assert MinProtocol(1).act(state(init=1, time=1, jd=0)) == DECIDE_0

    def test_waits_before_deadline(self):
        protocol = MinProtocol(2)
        for time in range(protocol.t + 1):
            assert protocol.act(state(time=time, init=1)) == NOOP

    def test_decides_one_at_deadline(self):
        protocol = MinProtocol(2)
        assert protocol.act(state(time=3, init=1)) == DECIDE_1

    def test_noop_after_decision(self):
        protocol = MinProtocol(1)
        assert protocol.act(state(decided=0, init=0)) == NOOP
        assert protocol.act(state(decided=1, time=2)) == NOOP

    def test_zero_rule_has_priority_over_deadline(self):
        protocol = MinProtocol(1)
        assert protocol.act(state(time=2, init=1, jd=0)) == DECIDE_0

    def test_jd_one_does_not_trigger_anything_early(self):
        protocol = MinProtocol(2)
        assert protocol.act(state(time=1, init=1, jd=1)) == NOOP


class TestConfiguration:
    def test_exchange_is_minimal(self):
        assert isinstance(MinProtocol(1).make_exchange(5), MinimalExchange)

    def test_negative_t_rejected(self):
        with pytest.raises(ConfigurationError):
            MinProtocol(-1)

    def test_validate_for_requires_t_below_n(self):
        with pytest.raises(ConfigurationError):
            MinProtocol(4).validate_for(4)

    def test_optimality_requires_two_nonfaulty(self):
        assert MinProtocol(2).supports_optimality(4)
        assert not MinProtocol(3).supports_optimality(4)

    def test_rejects_foreign_state_types(self):
        protocol = MinProtocol(1)
        # BasicLocalState is acceptable (it extends LocalState); an arbitrary
        # object is not.
        with pytest.raises(ProtocolError):
            protocol.act("not a state")

    def test_accepts_subclass_states(self):
        basic_state = BasicExchange(4).initial_state(0, 0)
        assert MinProtocol(1).act(basic_state) == DECIDE_0
