"""Tests for the artifact-store core: canonical keys, backends, and the store.

Covers the correctness properties the cache must not lose:

* key canonicality and *invalidation* — equal configurations hash identically,
  any key-relevant field change (including :data:`repro.store.STORE_VERSION`
  and the code fingerprint) mints a fresh key;
* backend mechanics — put/get/delete/entries, atomic overwrite;
* store mechanics — hit/miss accounting, JSON and pickle payloads, the
  in-memory LRU layer, size accounting, LRU eviction, and corrupted-entry
  recovery (miss + delete, never an exception).
"""

from __future__ import annotations

import threading

import pytest

from repro.core.errors import StoreError
from repro.failures import FailurePattern, SendingOmissionModel
from repro.protocols import BasicProtocol, MinProtocol
from repro.store import (
    ArtifactStore,
    FilesystemBackend,
    MemoryBackend,
    content_key,
    default_cache_dir,
    default_store,
    resolve_store,
    run_task_key,
    token,
)
from repro.store import keys as keys_module
from repro.store import store as store_module
from repro.systems import gamma_min


# --------------------------------------------------------------------------- keys


class TestToken:
    def test_primitives_are_tagged(self):
        # bool must not collapse into int: True and 1 are different configs.
        assert token(True) != token(1)
        assert token(None) != token(0)
        assert token("1") != token(1)

    def test_sets_are_order_insensitive(self):
        assert token(frozenset({(1, 2), (0, 1)})) == token(frozenset({(0, 1), (1, 2)}))

    def test_dicts_are_order_insensitive(self):
        assert token({"a": 1, "b": 2}) == token({"b": 2, "a": 1})

    def test_dataclasses_cover_patterns(self):
        first = FailurePattern(n=3, faulty=frozenset({0}),
                               omissions=frozenset({(0, 0, 1), (1, 0, 2)}))
        second = FailurePattern(n=3, faulty=frozenset({0}),
                                omissions=frozenset({(1, 0, 2), (0, 0, 1)}))
        assert token(first) == token(second)

    def test_protocol_instances_tokenize_via_dict(self):
        assert token(MinProtocol(1)) == token(MinProtocol(1))
        assert token(MinProtocol(1)) != token(MinProtocol(2))
        assert token(MinProtocol(1)) != token(BasicProtocol(1))

    def test_store_token_hook_wins(self):
        class Custom:
            def __init__(self, x):
                self.hidden = object()  # untokenisable on purpose
                self.x = x

            def __store_token__(self):
                return self.x

        assert token(Custom(3)) == token(Custom(3))
        assert token(Custom(3)) != token(Custom(4))

    def test_untokenisable_object_raises(self):
        class Slotted:
            __slots__ = ()

        with pytest.raises(StoreError, match="canonical store token"):
            token(Slotted())


class TestContentKey:
    def test_deterministic_and_kind_namespaced(self):
        model = SendingOmissionModel(n=3, t=1)
        assert content_key("system", model) == content_key("system", model)
        assert content_key("system", model) != content_key("report", model)

    def test_field_change_changes_key(self):
        assert (content_key("ctx", gamma_min(3, 1))
                != content_key("ctx", gamma_min(3, 1, horizon=4)))
        assert content_key("ctx", gamma_min(3, 1)) != content_key("ctx", gamma_min(4, 1))

    def test_store_version_invalidates(self, monkeypatch):
        before = content_key("x", 1)
        monkeypatch.setattr(keys_module, "STORE_VERSION", keys_module.STORE_VERSION + 1)
        assert content_key("x", 1) != before

    def test_code_fingerprint_invalidates(self, monkeypatch):
        before = content_key("x", 1)
        monkeypatch.setattr(keys_module, "_FINGERPRINT_CACHE", "different-code")
        assert content_key("x", 1) != before

    def test_run_task_key_covers_every_field(self):
        pattern = FailurePattern.failure_free(3)
        base = (MinProtocol(1), 3, (1, 1, 0), pattern, None)
        variants = [
            (MinProtocol(2), 3, (1, 1, 0), pattern, None),
            (BasicProtocol(1), 3, (1, 1, 0), pattern, None),
            (MinProtocol(1), 3, (1, 0, 1), pattern, None),
            (MinProtocol(1), 3, (1, 1, 0),
             FailurePattern(n=3, faulty=frozenset({0}),
                            omissions=frozenset({(0, 0, 1)})), None),
            (MinProtocol(1), 3, (1, 1, 0), pattern, 5),
        ]
        keys = {run_task_key(task) for task in [base, *variants]}
        assert len(keys) == len(variants) + 1


# --------------------------------------------------------------------------- backends


@pytest.fixture(params=["memory", "filesystem"])
def backend(request, tmp_path):
    if request.param == "memory":
        return MemoryBackend()
    return FilesystemBackend(tmp_path / "cache")


class TestBackends:
    def test_roundtrip_and_delete(self, backend):
        key = "ab" + "0" * 62
        assert backend.get(key) is None
        backend.put(key, b"payload")
        assert backend.get(key) == b"payload"
        assert backend.delete(key) is True
        assert backend.get(key) is None
        assert backend.delete(key) is False

    def test_overwrite_replaces(self, backend):
        key = "cd" + "0" * 62
        backend.put(key, b"old")
        backend.put(key, b"new")
        assert backend.get(key) == b"new"
        assert [entry.size for entry in backend.entries()] == [3]

    def test_entries_report_sizes(self, backend):
        backend.put("ee" + "0" * 62, b"12345")
        backend.put("ff" + "0" * 62, b"6789")
        sizes = sorted(entry.size for entry in backend.entries())
        assert sizes == [4, 5]

    def test_contains_and_peek_do_not_touch_recency(self, backend):
        """Membership tests and header reads must not reorder LRU eviction."""
        old, new = "aa" + "0" * 62, "bb" + "0" * 62
        backend.put(old, b"older-entry")
        if isinstance(backend, FilesystemBackend):
            import os
            path = backend._path(old)
            os.utime(path, (1, 1))  # force a clearly stale mtime
        backend.put(new, b"newer-entry")
        assert backend.contains(old) is True
        assert backend.peek(old, 5) == b"older"
        assert backend.contains("cc" + "0" * 62) is False
        assert backend.peek("cc" + "0" * 62) is None
        by_recency = sorted(backend.entries(), key=lambda entry: entry.last_used)
        assert by_recency[0].key == old  # still the eviction candidate


# --------------------------------------------------------------------------- the store


class TestArtifactStore:
    def test_hit_miss_accounting(self, tmp_path):
        store = default_store(tmp_path)
        assert store.get("a" * 64) is None
        store.put("a" * 64, {"x": 1}, kind="test")
        assert store.get("a" * 64) == {"x": 1}
        stats = store.stats()
        assert (stats.misses, stats.hits, stats.puts) == (1, 1, 1)
        assert stats.by_kind == {"test": 1}

    def test_json_payload_is_tool_readable(self, tmp_path):
        store = default_store(tmp_path)
        store.put("b" * 64, {"rows": [1, 2]}, kind="report", serializer="json")
        fresh = default_store(tmp_path)
        assert fresh.get("b" * 64) == {"rows": [1, 2]}
        payload = fresh.backend.get("b" * 64)
        assert payload.startswith(b"REBA1\nreport\njson\n")

    def test_unknown_serializer_rejected(self):
        with pytest.raises(StoreError, match="serializer"):
            ArtifactStore().put("c" * 64, 1, serializer="yaml")

    def test_memory_lru_serves_after_backend_loss(self, tmp_path):
        store = default_store(tmp_path)
        store.put("d" * 64, [1, 2, 3])
        store.clear()  # clears backend *and* memory
        assert store.get("d" * 64) is None
        store.put("e" * 64, [4, 5])
        for entry in list(store.backend.entries()):
            store.backend.delete(entry.key)  # backend loss only
        assert store.get("e" * 64) == [4, 5]  # memory LRU still has it
        assert store.stats().memory_hits == 1

    def test_memory_lru_capacity(self):
        store = ArtifactStore(MemoryBackend(), memory_entries=2)
        for index in range(3):
            store.put(f"{index:064d}", index)
        assert len(store._memory) == 2

    def test_corrupted_entry_is_recovered_not_raised(self, tmp_path):
        store = default_store(tmp_path)
        key = "f" * 64
        store.put(key, {"ok": True})
        for variant in (b"garbage", b"REBA1\nkind\npickle\nnot-gzip"):
            fresh = default_store(tmp_path)  # bypass the memory layer
            fresh.backend.put(key, variant)
            assert fresh.get(key) is None
            stats = fresh.stats()
            assert stats.corrupted == 1
            assert stats.entries == 0  # the damaged entry was deleted

    def test_eviction_is_lru_and_protects_new_key(self, tmp_path):
        store = default_store(tmp_path)
        store.max_bytes = 1  # force eviction after every put
        store.put("1" * 64, "first")
        store.put("2" * 64, "second")
        fresh = default_store(tmp_path)
        assert fresh.get("1" * 64) is None  # oldest evicted
        assert fresh.get("2" * 64) == "second"  # newest protected

    def test_eviction_order_is_deterministic_among_same_second_entries(self, tmp_path):
        """Regression: ``st_mtime`` has 1-second granularity on some filesystems.

        A burst of writes can land on one timestamp, and a recency-only sort
        would then evict in directory-listing order — arbitrary across
        platforms.  The eviction scan tie-breaks on the key, so the same store
        state always evicts the same entries.
        """
        import os

        store = default_store(tmp_path)
        keys = [ch * 64 for ch in ("d", "b", "f", "a", "c", "e")]
        for key in keys:
            store.put(key, key)
        # Pin every entry to one whole-second mtime, as a coarse filesystem would.
        for key in keys:
            os.utime(store.backend._path(key), (1_000_000, 1_000_000))
        survivor_count = 2
        sizes = sorted(entry.size for entry in store.backend.entries())
        store.evict_to(sum(sizes[:survivor_count]))
        survivors = sorted(entry.key for entry in store.backend.entries())
        # Keys evict in ascending key order, so exactly the largest keys remain.
        assert survivors == sorted(keys)[-survivor_count:]

    def test_eviction_not_triggered_under_the_bound(self, tmp_path):
        class CountingEntriesBackend(FilesystemBackend):
            walks = 0

            def entries(self):
                type(self).walks += 1
                return super().entries()

        store = ArtifactStore(CountingEntriesBackend(tmp_path / "cache"),
                              max_bytes=10_000_000)
        for index in range(5):
            store.put(f"{index:064d}", index)
        # One initial total_bytes() walk to seed the running estimate; the
        # following puts stay under the bound and must not walk the backend.
        assert CountingEntriesBackend.walks == 1

    def test_size_accounting(self, tmp_path):
        store = default_store(tmp_path)
        assert store.total_bytes() == 0
        store.put("9" * 64, list(range(100)))
        assert store.total_bytes() > 0
        assert store.stats().total_bytes == store.total_bytes()

    def test_clear_counts(self, tmp_path):
        store = default_store(tmp_path)
        store.put("3" * 64, 1)
        store.put("4" * 64, 2)
        assert store.clear() == 2
        assert store.stats().entries == 0

    def test_corruption_as_miss_under_concurrent_eviction(self, tmp_path):
        """Corrupt entries read as misses even while eviction races the reads.

        Readers hammer keys whose on-disk payloads have been damaged while
        writers force LRU eviction over the same backend: every get must
        resolve to an artifact or a miss — never an exception — whether the
        corrupt file is deleted by the corruption path or the evictor first.
        """
        store = ArtifactStore(FilesystemBackend(tmp_path), max_bytes=2048,
                              memory_entries=0)
        victims = [f"{index:x}" * 16 for index in range(4)]
        for key in victims:
            store.put(key, {"key": key})
        for path in tmp_path.rglob("*"):
            if path.is_file():
                path.write_bytes(b"garbage")
        errors = []

        def reader():
            try:
                for _ in range(40):
                    for key in victims:
                        assert store.get(key) is None
            except Exception as exc:  # pragma: no cover - the failure mode
                errors.append(exc)

        def writer(slot):
            try:
                for index in range(40):
                    store.put(f"{slot}{index:02d}" + "e" * 61,
                              list(range(100)))
            except Exception as exc:  # pragma: no cover - the failure mode
                errors.append(exc)

        threads = ([threading.Thread(target=reader) for _ in range(3)]
                   + [threading.Thread(target=writer, args=(slot,))
                      for slot in range(2)])
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert errors == []
        stats = store.stats()
        # Every victim was either caught corrupt (deleted + counted) by a
        # reader or evicted first; none survived as a readable artifact.
        assert stats.corrupted >= 1
        assert stats.io_errors == 0  # races are not IO errors
        for key in victims:
            assert store.get(key) is None

    def test_io_errors_are_counted_and_degrade(self, tmp_path, caplog):
        """A backend that starts raising degrades the store to uncached."""
        import logging
        store = default_store(tmp_path)
        store.put("a" * 64, {"v": 1})

        class DeadBackend:
            def __getattr__(self, name):
                def boom(*args, **kwargs):
                    raise OSError("disk gone")
                return boom

        store.backend = DeadBackend()
        store._memory.clear()
        with caplog.at_level(logging.WARNING, logger="repro.store"):
            assert store.get("a" * 64) is None
        assert any("degrading to uncached" in record.message
                   for record in caplog.records)
        store.put("b" * 64, {"v": 2})     # skipped, silently
        assert store.get("b" * 64) == {"v": 2}  # from the memory layer
        assert store.contains("c" * 64) is False
        assert store.total_bytes() == 0
        stats = store.stats()
        assert stats.io_errors >= 3
        assert stats.as_dict()["session"]["io_errors"] == stats.io_errors

    def test_stats_counts_failures_from_its_own_walk(self, tmp_path):
        """``stats()`` publishes the walk's own IO failure in the snapshot it
        returns (the final counter read happens under the lock, after the
        walk has recorded its error)."""
        store = default_store(tmp_path)
        assert store.stats().io_errors == 0

        class WalkFailsBackend:
            def entries(self):
                raise OSError("walk failed")

        store.backend = WalkFailsBackend()
        stats = store.stats()
        assert stats.io_errors == 1  # the failed walk itself is included
        assert stats.entries == 0


# --------------------------------------------------------------------------- resolution


class TestResolution:
    def test_none_is_off_by_default(self, monkeypatch):
        monkeypatch.delenv(store_module.CACHE_ENABLE_ENV, raising=False)
        assert resolve_store(None) is None

    def test_env_opt_in(self, monkeypatch, tmp_path):
        monkeypatch.setenv(store_module.CACHE_ENABLE_ENV, "1")
        monkeypatch.setenv(store_module.CACHE_DIR_ENV, str(tmp_path / "env-cache"))
        store = resolve_store(None)
        assert isinstance(store, ArtifactStore)
        assert store.backend.root == tmp_path / "env-cache"

    def test_path_opens_filesystem_store(self, tmp_path):
        store = resolve_store(tmp_path / "somewhere")
        assert isinstance(store.backend, FilesystemBackend)

    def test_store_passes_through(self):
        store = ArtifactStore()
        assert resolve_store(store) is store

    def test_path_resolution_is_memoized(self, tmp_path):
        # Repeated store= path arguments must share one handle (and with it
        # the memory LRU and session counters), not reopen the store per call.
        first = resolve_store(tmp_path / "shared")
        second = resolve_store(str(tmp_path / "shared"))
        assert first is second

    def test_env_opt_in_is_memoized(self, monkeypatch, tmp_path):
        monkeypatch.setenv(store_module.CACHE_ENABLE_ENV, "1")
        monkeypatch.setenv(store_module.CACHE_DIR_ENV, str(tmp_path / "env-shared"))
        assert resolve_store(None) is resolve_store(None)

    def test_junk_rejected(self):
        with pytest.raises(StoreError, match="not a store"):
            resolve_store(42)

    def test_default_dir_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv(store_module.CACHE_DIR_ENV, str(tmp_path / "elsewhere"))
        assert default_cache_dir() == tmp_path / "elsewhere"
        monkeypatch.delenv(store_module.CACHE_DIR_ENV)
        assert default_cache_dir().name == "repro-eba"

    def test_max_bytes_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv(store_module.CACHE_MAX_BYTES_ENV, "12345")
        assert default_store(tmp_path).max_bytes == 12345
        monkeypatch.setenv(store_module.CACHE_MAX_BYTES_ENV, "not-a-number")
        with pytest.raises(StoreError, match="byte count"):
            default_store(tmp_path)


# --------------------------------------------------------------------------- concurrency


def _process_writer(root: str, key: str, worker: int, rounds: int) -> bool:
    """Hammer one key from a separate process (top-level for picklability)."""
    store = default_store(root)
    for round_index in range(rounds):
        store.put(key, {"worker": worker, "round": round_index}, kind="race")
        if store.get(key) is None:
            return False
    return True


class TestConcurrentAccess:
    """The store is shared by HTTP handler threads, worker threads, and
    (through the filesystem backend) independent processes — the substrate
    the service's coalescing sits on, so the races are pinned here."""

    def test_threads_writing_the_same_key_race_safely(self, tmp_path):
        store = default_store(tmp_path)
        key = "a" * 64
        payloads = [{"writer": index, "data": list(range(50))}
                    for index in range(8)]
        errors = []

        def write(index):
            try:
                for _ in range(25):
                    store.put(key, payloads[index], kind="race")
                    value = store.get(key)
                    assert value in payloads  # never a torn/interleaved value
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=write, args=(index,))
                   for index in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors
        assert store.get(key) in payloads
        assert store.stats().entries == 1

    def test_threads_mixing_puts_gets_and_eviction(self, tmp_path):
        """Eviction + memory-LRU bookkeeping under contention: the shared
        OrderedDict and counters sit behind the store's lock."""
        store = default_store(tmp_path)
        store.max_bytes = 4096  # small enough to evict constantly
        errors = []

        def churn(worker):
            try:
                for index in range(40):
                    key = f"{worker:02d}{index % 5:062d}"
                    store.put(key, {"worker": worker, "index": index})
                    store.get(key)
                    store.contains(key)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=churn, args=(worker,))
                   for worker in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors
        stats = store.stats()  # coherent snapshot, no negative counters
        assert stats.puts == 6 * 40 and stats.total_bytes >= 0

    def test_processes_writing_the_same_key_race_safely(self, tmp_path):
        """Two processes, one filesystem key: temp-file + os.replace writes
        mean readers only ever see complete payloads."""
        import multiprocessing
        context = multiprocessing.get_context("fork")
        key = "b" * 64
        with context.Pool(2) as pool:
            outcomes = pool.starmap(
                _process_writer,
                [(str(tmp_path), key, worker, 20) for worker in range(2)])
        assert outcomes == [True, True]
        final = default_store(tmp_path).get(key)
        assert final is not None and final["round"] == 19

    def test_concurrent_caching_executor_runs_share_one_store(self, tmp_path):
        """Two threads executing the identical run through CachingExecutor:
        both get the correct trace and the store ends with one entry."""
        from repro.api import SerialExecutor
        from repro.protocols import MinProtocol
        from repro.failures import FailurePattern as Pattern
        from repro.store import CachingExecutor
        store = default_store(tmp_path)
        task = (MinProtocol(1), 3, (1, 0, 1), Pattern.failure_free(3), None)
        reference = SerialExecutor().run_tasks([task])[0]
        results = [None, None]

        def run(slot):
            results[slot] = CachingExecutor(store).run_tasks([task])[0]

        threads = [threading.Thread(target=run, args=(slot,))
                   for slot in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert results[0] == results[1] == reference
        assert store.stats().by_kind == {"run": 1}
