"""Unit tests for the EBA specification checkers."""

import pytest

from repro.core.errors import SpecificationViolation
from repro.protocols import MinProtocol, NaiveZeroBiasedProtocol
from repro.simulation import simulate
from repro.spec import (
    check_agreement,
    check_eba,
    check_termination,
    check_unique_decision,
    check_validity,
    require_eba,
)
from repro.workloads import all_ones, intro_counterexample


@pytest.fixture
def good_trace():
    return simulate(MinProtocol(1), 4, [0, 1, 1, 1])


@pytest.fixture
def split_trace():
    """A run of the naive protocol that splits the nonfaulty decisions."""
    preferences, pattern = intro_counterexample(n=4, t=1)
    return simulate(NaiveZeroBiasedProtocol(1), 4, preferences, pattern)


class TestIndividualCheckers:
    def test_unique_decision_holds_for_pmin(self, good_trace):
        assert check_unique_decision(good_trace) == []

    def test_agreement_detects_split(self, split_trace):
        violations = check_agreement(split_trace)
        assert len(violations) == 1
        assert "disagree" in violations[0]

    def test_agreement_ignores_faulty_agents(self):
        # A fully silent faulty agent with preference 0 decides 0 on its own
        # while the nonfaulty agents decide 1; Agreement only constrains the
        # nonfaulty agents, so the checker must not flag this run.
        from repro.failures import FailurePattern

        pattern = FailurePattern.silent(5, faulty=[0], horizon=5)
        trace = simulate(MinProtocol(1), 5, [0, 1, 1, 1, 1], pattern)
        assert trace.decision_value(0) == 0
        assert {trace.decision_value(a) for a in trace.nonfaulty} == {1}
        assert check_agreement(trace) == []

    def test_validity_holds(self, good_trace):
        assert check_validity(good_trace) == []
        assert check_validity(good_trace, include_faulty=True) == []

    def test_validity_detects_manufactured_value(self):
        # All agents prefer 1 but the eager protocol is tricked into... actually
        # no correct trace can violate validity, so synthesize one by running the
        # eager protocol and then lying about the preferences.
        trace = simulate(MinProtocol(1), 3, [0, 0, 0])
        trace.preferences = (1, 1, 1)
        violations = check_validity(trace)
        assert violations, "deciding 0 when everyone preferred 1 must be flagged"

    def test_termination_with_deadline(self, good_trace):
        assert check_termination(good_trace, deadline=3) == []
        assert check_termination(good_trace, deadline=1) != []

    def test_termination_detects_undecided(self):
        trace = simulate(MinProtocol(2), 4, all_ones(4), horizon=2)
        violations = check_termination(trace)
        assert len(violations) == 4

    def test_termination_for_faulty_flag(self):
        from repro.failures import FailurePattern

        pattern = FailurePattern.silent(4, faulty=[0], horizon=5)
        trace = simulate(MinProtocol(1), 4, all_ones(4), pattern)
        assert check_termination(trace, include_faulty=True) == []


class TestReport:
    def test_ok_report(self, good_trace):
        report = check_eba(good_trace, deadline=3)
        assert report.ok
        assert report.violations() == []
        assert "OK" in repr(report)

    def test_violating_report(self, split_trace):
        report = check_eba(split_trace)
        assert not report.ok
        assert report.agreement
        assert "violation" in repr(report)

    def test_require_eba_raises(self, split_trace):
        with pytest.raises(SpecificationViolation):
            require_eba(split_trace)

    def test_require_eba_returns_report_when_ok(self, good_trace):
        assert require_eba(good_trace).ok
