"""The run-space scan fan-out: shared-memory sharding vs the in-process kernel.

``scan_runs`` must return byte-identical arrays whether the kernel runs
in-process or sharded across forked workers — the same determinism contract
the run/batch executors keep, extended to the check phase.  The development
and CI boxes may have few cores, so the forked path is *forced* here (the
fork threshold is monkeypatched away) rather than left to the heuristics.
"""

import numpy as np
import pytest

from repro.api import scans
from repro.api.executors import ParallelExecutor, SerialExecutor
from repro.api.scans import fork_available, scan_runs
from repro.kbp.safety import _chain_receipt_kernel, _chain_receipt_table, check_safety
from repro.logic.words import blocks
from repro.protocols import MinProtocol
from repro.systems import gamma_min


@pytest.fixture(scope="module")
def system():
    return gamma_min(3, 1).build_system(MinProtocol(1))


class TestBlocks:
    def test_blocks_cover_the_range_contiguously(self):
        for num_items in (0, 1, 5, 64, 100, 2048):
            for num_blocks in (1, 2, 7, 64):
                ranges = blocks(num_items, num_blocks)
                if num_items == 0:
                    assert ranges == []
                    continue
                assert len(ranges) <= num_blocks
                assert ranges[0][0] == 0
                assert ranges[-1][1] == num_items
                for (_, stop), (start, _) in zip(ranges, ranges[1:]):
                    assert stop == start
                assert all(start < stop for start, stop in ranges)

    def test_more_blocks_than_items_degrades_to_singletons(self):
        assert blocks(3, 16) == [(0, 1), (1, 2), (2, 3)]


class TestChainReceiptKernel:
    def test_kernel_rows_match_the_dict_table(self, system):
        table = _chain_receipt_table(system)
        rows = _chain_receipt_kernel(system, 0, len(system.runs))
        assert rows.shape == (len(system.runs), system.n)
        for run_index in range(len(system.runs)):
            for agent in range(system.n):
                expected = table.get((run_index, agent), -1)
                assert int(rows[run_index, agent]) == expected

    def test_kernel_is_range_local(self, system):
        whole = _chain_receipt_kernel(system, 0, len(system.runs))
        lo = _chain_receipt_kernel(system, 0, 10)
        hi = _chain_receipt_kernel(system, 10, len(system.runs))
        assert np.array_equal(np.concatenate([lo, hi]), whole)


class TestScanRuns:
    def test_serial_scan_matches_direct_kernel_call(self, system):
        direct = _chain_receipt_kernel(system, 0, len(system.runs))
        scanned = scan_runs(system, _chain_receipt_kernel,
                            row_shape=(system.n,), dtype="int16", workers=1)
        assert np.array_equal(scanned, direct)

    @pytest.mark.skipif(not fork_available(), reason="no fork start method")
    def test_forked_scan_is_byte_identical_to_serial(self, system, monkeypatch):
        monkeypatch.setattr(scans, "MIN_RUNS_TO_FORK", 0)
        serial = scan_runs(system, _chain_receipt_kernel,
                           row_shape=(system.n,), dtype="int16", workers=1)
        for workers in (2, 3):
            forked = scan_runs(system, _chain_receipt_kernel,
                               row_shape=(system.n,), dtype="int16",
                               workers=workers)
            assert forked.tobytes() == serial.tobytes()

    @pytest.mark.skipif(not fork_available(), reason="no fork start method")
    def test_kernel_shape_mismatch_is_an_error(self, system, monkeypatch):
        monkeypatch.setattr(scans, "MIN_RUNS_TO_FORK", 0)

        def bad_kernel(sys_, start, stop):
            return np.zeros((stop - start + 1,), dtype=np.int16)

        with pytest.raises(Exception, match="shape"):
            scan_runs(system, bad_kernel, row_shape=(), dtype="int16", workers=2)

    def test_scalar_rows_work(self, system):
        def run_length_kernel(sys_, start, stop):
            return np.asarray([sys_.runs[index].horizon
                               for index in range(start, stop)], dtype=np.int16)

        result = scan_runs(system, run_length_kernel, row_shape=(), dtype="int16",
                           workers=1)
        assert result.shape == (len(system.runs),)
        assert set(result.tolist()) == {system.horizon}


class TestExecutorDispatch:
    def test_serial_executor_scan_runs(self, system):
        result = SerialExecutor().scan_runs(system, _chain_receipt_kernel,
                                            row_shape=(system.n,), dtype="int16")
        assert np.array_equal(result, _chain_receipt_kernel(system, 0, len(system.runs)))

    @pytest.mark.skipif(not fork_available(), reason="no fork start method")
    def test_parallel_executor_scan_runs_matches_serial(self, system, monkeypatch):
        monkeypatch.setattr(scans, "MIN_RUNS_TO_FORK", 0)
        serial = SerialExecutor().scan_runs(system, _chain_receipt_kernel,
                                            row_shape=(system.n,), dtype="int16")
        parallel = ParallelExecutor(max_workers=2).scan_runs(
            system, _chain_receipt_kernel, row_shape=(system.n,), dtype="int16")
        assert parallel.tobytes() == serial.tobytes()

    @pytest.mark.skipif(not fork_available(), reason="no fork start method")
    def test_sharded_safety_scan_report_is_identical(self, system, monkeypatch):
        """check_safety through a sharding executor = check_safety serial."""
        monkeypatch.setattr(scans, "MIN_RUNS_TO_FORK", 0)
        context = gamma_min(3, 1)
        baseline = check_safety(MinProtocol(1), context, system=system,
                                scan="vector")
        sharded = check_safety(MinProtocol(1), context, system=system,
                               scan="vector", executor=ParallelExecutor(max_workers=2))
        assert sharded.points_checked == baseline.points_checked
        assert sharded.clause1_checks == baseline.clause1_checks
        assert sharded.clause2_checks == baseline.clause2_checks
        assert sharded.violations == baseline.violations
