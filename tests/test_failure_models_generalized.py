"""Tests for the generalized failure-model subsystem (receive/general omissions).

Covers the receive-omission events on ``FailurePattern``, the model registry,
the ``RO(t)`` / ``GO(t)`` models' validate/sample/enumerate machinery, the
receive-side adversaries, and the differential guarantee that ``GO(t)``
restricted to send-only events reproduces ``SO(t)`` systems byte-identically.
"""

import pickle
import random

import pytest

from repro.core.errors import ConfigurationError, FailureModelError
from repro.failures import (
    CrashModel,
    FailureFreeModel,
    FailurePattern,
    GeneralOmissionModel,
    ReceiveOmissionModel,
    SendingOmissionModel,
    available_models,
    make_model,
    mixed_omission_chain_adversary,
    model_class,
    partition_adversary,
    random_model_adversaries,
    register_model,
    resolve_model,
    silent_receiver_adversary,
)
from repro.protocols import MinProtocol
from repro.systems import build_system, gamma_min
from repro.workloads import (
    mixed_chain_scenario,
    partition_scenario,
    random_model_scenarios,
    random_scenarios,
    silent_receiver_scenario,
)


class TestReceiveOmissionEvents:
    def test_receiver_must_be_faulty(self):
        with pytest.raises(FailureModelError):
            FailurePattern(n=3, faulty=frozenset(),
                           receive_omissions=frozenset({(0, 1, 2)}))

    def test_sender_need_not_be_faulty(self):
        pattern = FailurePattern(n=3, faulty=frozenset({2}),
                                 receive_omissions=frozenset({(0, 1, 2)}))
        assert not pattern.delivered(0, 1, 2)
        assert pattern.delivered(0, 1, 0)

    def test_out_of_range_agents_rejected(self):
        with pytest.raises(FailureModelError):
            FailurePattern(n=3, faulty=frozenset({1}),
                           receive_omissions=frozenset({(0, 5, 1)}))

    def test_delivered_consults_both_event_kinds(self):
        pattern = FailurePattern(n=3, faulty=frozenset({0, 1}),
                                 omissions=frozenset({(0, 0, 2)}),
                                 receive_omissions=frozenset({(1, 2, 1)}))
        assert not pattern.delivered(0, 0, 2)   # send omission
        assert not pattern.delivered(1, 2, 1)   # receive omission
        assert pattern.delivered(0, 2, 1)
        assert pattern.all_blocked == frozenset({(0, 0, 2), (1, 2, 1)})

    def test_blocked_senders_and_deaf_receivers(self):
        pattern = FailurePattern.deaf(4, faulty=[2], horizon=2)
        assert pattern.blocked_senders(0, 2) == frozenset({0, 1, 3})
        assert pattern.deaf_receivers(0) == frozenset({2})
        assert pattern.deaf_receivers(5) == frozenset()

    def test_exhibits_faulty_behaviour_via_receives(self):
        pattern = FailurePattern.from_receive_blocked(3, [(0, 1, 2)])
        assert pattern.exhibits_faulty_behaviour(2)
        assert not pattern.exhibits_faulty_behaviour(1)
        assert not pattern.exhibits_faulty_behaviour(2, horizon=0)

    def test_pickle_round_trip_is_canonical(self):
        a = FailurePattern(n=4, faulty=frozenset({1, 2}),
                           omissions=frozenset({(0, 1, 3), (1, 1, 0)}),
                           receive_omissions=frozenset({(0, 3, 2), (2, 0, 2)}))
        b = FailurePattern(n=4, faulty=frozenset({2, 1}),
                           omissions=frozenset({(1, 1, 0), (0, 1, 3)}),
                           receive_omissions=frozenset({(2, 0, 2), (0, 3, 2)}))
        assert a == b
        assert pickle.dumps(a) == pickle.dumps(b)
        assert pickle.loads(pickle.dumps(a)) == a

    def test_with_and_without_receive_omission(self):
        base = FailurePattern.failure_free(3)
        extended = base.with_receive_omission(1, 0, 2)
        assert extended.faulty == frozenset({2})
        assert not extended.delivered(1, 0, 2)
        restored = extended.without_receive_omission(1, 0, 2)
        assert restored.delivered(1, 0, 2)
        assert restored.faulty == frozenset({2})

    def test_swap_roles_swaps_the_charged_receiver(self):
        pattern = FailurePattern.from_receive_blocked(4, [(0, 1, 2), (1, 3, 2)])
        swapped = pattern.swap_roles(2, 0)
        assert swapped.faulty == frozenset({0})
        assert not swapped.delivered(0, 1, 0)
        assert not swapped.delivered(1, 3, 0)
        assert swapped.delivered(0, 1, 2)
        assert swapped.swap_roles(2, 0) == pattern

    def test_restrict_to_filters_receive_omissions(self):
        pattern = FailurePattern.from_receive_blocked(3, [(0, 1, 2), (5, 1, 2)])
        restricted = pattern.restrict_to(3)
        assert not restricted.delivered(0, 1, 2)
        assert restricted.delivered(5, 1, 2)

    def test_send_restriction_drops_receive_events_only(self):
        pattern = FailurePattern(n=3, faulty=frozenset({0, 1}),
                                 omissions=frozenset({(0, 0, 2)}),
                                 receive_omissions=frozenset({(0, 2, 1)}))
        restricted = pattern.send_restriction()
        assert restricted.faulty == pattern.faulty
        assert restricted.omissions == pattern.omissions
        assert restricted.receive_omissions == frozenset()

    def test_describe_mentions_receives(self):
        pattern = FailurePattern.from_receive_blocked(3, [(0, 1, 2)])
        assert "blocked receives" in pattern.describe()

    def test_iteration_yields_union_sorted(self):
        pattern = FailurePattern(n=3, faulty=frozenset({1, 2}),
                                 omissions=frozenset({(1, 1, 0)}),
                                 receive_omissions=frozenset({(0, 0, 2)}))
        assert list(pattern) == [(0, 0, 2), (1, 1, 0)]


class TestRegistry:
    def test_available_models(self):
        assert available_models() == ("sending-omission", "receive-omission",
                                      "general-omission", "crash", "failure-free")

    def test_aliases_resolve(self):
        assert model_class("so") is SendingOmissionModel
        assert model_class("RO") is ReceiveOmissionModel
        assert model_class("go") is GeneralOmissionModel

    def test_make_model(self):
        assert make_model("general-omission", 4, 2) == GeneralOmissionModel(n=4, t=2)
        assert make_model("failure-free", 4) == FailureFreeModel(4)
        assert make_model("crash", 5, 1).name == "Crash(1)"

    def test_unknown_name_raises_naming_choices(self):
        with pytest.raises(ConfigurationError, match="general-omission"):
            make_model("byzantine", 4, 1)

    def test_failure_free_rejects_nonzero_t(self):
        with pytest.raises(ConfigurationError):
            make_model("failure-free", 4, 1)

    def test_resolve_model_checks_n_and_t(self):
        model = GeneralOmissionModel(n=4, t=2)
        assert resolve_model(model, 4, 2) is model
        with pytest.raises(ConfigurationError):
            resolve_model(model, 5, 2)
        with pytest.raises(ConfigurationError):
            resolve_model(model, 4, 3)
        # A looser instance bound is rejected too: the context would otherwise
        # enumerate more faulty agents than its declared t.
        with pytest.raises(ConfigurationError):
            resolve_model(model, 4, 1)

    def test_contexts_reject_mismatched_model_bounds(self):
        with pytest.raises(ConfigurationError):
            gamma_min(3, 1, failure_model=GeneralOmissionModel(n=3, t=2))

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register_model("so")(GeneralOmissionModel)


class TestReceiveOmissionModel:
    def test_rejects_send_omissions(self):
        model = ReceiveOmissionModel(n=3, t=1)
        assert not model.admits(FailurePattern.from_blocked(3, [(0, 1, 2)]))
        assert model.admits(FailurePattern.from_receive_blocked(3, [(0, 1, 2)]))

    def test_enumeration_count_matches_formula(self):
        model = ReceiveOmissionModel(n=3, t=1)
        patterns = list(model.enumerate(horizon=1))
        # 1 failure-free + 3 choices of faulty agent * 2^(1 round * 2 senders)
        assert len(patterns) == 1 + 3 * 4
        assert len(patterns) == model.count_patterns(horizon=1)
        assert len(set(patterns)) == len(patterns)
        assert all(model.admits(p) for p in patterns)
        assert all(not p.omissions for p in patterns)

    def test_sample_is_admissible_and_reproducible(self):
        model = ReceiveOmissionModel(n=5, t=2)
        first = model.sample(random.Random(7), horizon=3)
        second = model.sample(random.Random(7), horizon=3)
        assert first == second
        assert model.admits(first)

    def test_mirror_of_so_enumeration(self):
        """RO's patterns are exactly SO's with the two event charges transposed."""
        so = SendingOmissionModel(n=3, t=1)
        ro = ReceiveOmissionModel(n=3, t=1)
        transposed = sorted(
            FailurePattern(
                n=3, faulty=p.faulty,
                receive_omissions=frozenset((m, j, i) for (m, i, j) in p.omissions),
            ).sort_key()
            for p in so.enumerate(horizon=2)
        )
        assert transposed == sorted(p.sort_key() for p in ro.enumerate(horizon=2))


class TestGeneralOmissionModel:
    def test_admits_both_event_kinds(self):
        model = GeneralOmissionModel(n=3, t=2)
        pattern = FailurePattern(n=3, faulty=frozenset({0, 1}),
                                 omissions=frozenset({(0, 0, 2)}),
                                 receive_omissions=frozenset({(0, 2, 1)}))
        assert model.admits(pattern)
        assert model.admits(FailurePattern.from_blocked(3, [(0, 1, 2)]))
        assert model.admits(FailurePattern.from_receive_blocked(3, [(0, 1, 2)]))

    def test_enumeration_count_and_uniqueness(self):
        model = GeneralOmissionModel(n=3, t=1)
        patterns = list(model.enumerate(horizon=1))
        # 1 + 3 faulty choices * 2^(2 send slots + 2 receive slots from the
        # nonfaulty senders)
        assert len(patterns) == 1 + 3 * 16
        assert len(patterns) == model.count_patterns(horizon=1)
        assert len(set(patterns)) == len(patterns)
        assert all(model.admits(p) for p in patterns)

    def test_enumeration_has_no_delivery_equivalent_duplicates(self):
        """No two enumerated patterns with the same faulty set block the same edges."""
        model = GeneralOmissionModel(n=3, t=2)
        seen = set()
        for pattern in model.enumerate(horizon=1, max_faulty=2):
            key = (pattern.faulty, pattern.all_blocked)
            assert key not in seen
            seen.add(key)

    def test_send_only_restriction_reproduces_so_systems_byte_identically(self):
        """GO(t) with no receive events == SO(t), down to the pickled system bytes."""
        n, t, horizon = 3, 1, 2
        go = GeneralOmissionModel(n=n, t=t)
        so = go.send_restriction()
        assert so == SendingOmissionModel(n=n, t=t)
        go_send_only = sorted(
            (p for p in go.enumerate(horizon) if not p.receive_omissions),
            key=FailurePattern.sort_key,
        )
        so_patterns = sorted(so.enumerate(horizon), key=FailurePattern.sort_key)
        assert go_send_only == so_patterns
        system_go = build_system(MinProtocol(t), n, horizon, go_send_only)
        system_so = build_system(MinProtocol(t), n, horizon, so_patterns)
        assert pickle.dumps(system_go.runs) == pickle.dumps(system_so.runs)

    def test_sample_is_admissible(self):
        model = GeneralOmissionModel(n=4, t=2)
        for seed in range(10):
            assert model.admits(model.sample(random.Random(seed), horizon=3))


class TestExistingModelsRejectReceiveEvents:
    @pytest.mark.parametrize("model", [
        SendingOmissionModel(n=3, t=1),
        CrashModel(n=3, t=1),
        FailureFreeModel(3),
    ])
    def test_receive_omissions_rejected(self, model):
        pattern = FailurePattern.from_receive_blocked(3, [(0, 1, 2)])
        assert not model.admits(pattern)


class TestReceiveSideAdversaries:
    def test_silent_receiver_is_ro_admissible(self):
        pattern = silent_receiver_adversary(4, faulty=[0], horizon=3)
        assert ReceiveOmissionModel(n=4, t=1).admits(pattern)
        assert GeneralOmissionModel(n=4, t=1).admits(pattern)
        assert not SendingOmissionModel(n=4, t=1).admits(pattern)
        for round_index in range(3):
            assert pattern.deaf_receivers(round_index) == frozenset({0})

    def test_partition_severs_both_directions(self):
        pattern = partition_adversary(5, isolated=[0, 1], horizon=2)
        assert GeneralOmissionModel(n=5, t=2).admits(pattern)
        assert pattern.faulty == frozenset({0, 1})
        assert not pattern.delivered(0, 0, 3)   # isolated -> rest
        assert not pattern.delivered(0, 3, 0)   # rest -> isolated
        assert pattern.delivered(0, 0, 1)       # within the isolated side
        assert pattern.delivered(0, 3, 4)       # within the rest

    def test_empty_partition_is_failure_free(self):
        assert partition_adversary(4, isolated=[], horizon=3) == \
            FailurePattern.failure_free(4)

    def test_mixed_chain_links_survive(self):
        pattern = mixed_omission_chain_adversary(5, chain=(0, 1, 2), horizon=4)
        assert GeneralOmissionModel(n=5, t=3).admits(pattern)
        assert pattern.faulty == frozenset({0, 1, 2})
        # Forward links deliver, everything else around the chain is cut.
        assert pattern.delivered(0, 0, 1)
        assert pattern.delivered(1, 1, 2)
        assert not pattern.delivered(0, 0, 3)   # chain agent talks off-chain
        assert not pattern.delivered(0, 3, 1)   # off-chain agent talks to chain
        assert not pattern.delivered(0, 1, 0)   # backward along the chain

    def test_random_model_adversaries_admissible_per_model(self):
        for key in ("sending-omission", "receive-omission", "general-omission"):
            model = make_model(key, 4, 2)
            patterns = random_model_adversaries(key, 4, 2, horizon=3, count=5, seed=9)
            assert len(patterns) == 5
            assert all(model.admits(p) for p in patterns)


class TestModelScenarios:
    def test_random_model_scenarios_matches_legacy_for_so(self):
        legacy = random_scenarios(4, 1, count=6, seed=11)
        generic = random_model_scenarios(4, 1, count=6, model="sending-omission",
                                         seed=11, omission_probability=0.5)
        assert legacy == generic

    def test_named_scenarios_are_admissible(self):
        prefs, pattern = silent_receiver_scenario(5, 2)
        assert len(prefs) == 5
        assert ReceiveOmissionModel(n=5, t=2).admits(pattern)
        prefs, pattern = partition_scenario(5, 2)
        assert prefs == (0, 0, 1, 1, 1)
        assert GeneralOmissionModel(n=5, t=2).admits(pattern)
        prefs, pattern = mixed_chain_scenario(5, 2)
        assert prefs == (0, 1, 1, 1, 1)
        assert GeneralOmissionModel(n=5, t=2).admits(pattern)

    def test_contexts_take_models_by_name(self):
        context = gamma_min(3, 1, failure_model="receive-omission")
        assert context.failure_model == ReceiveOmissionModel(n=3, t=1)
        patterns = list(context.patterns())
        assert all(not p.omissions for p in patterns)
