"""Unit tests for implementation checking and epistemic synthesis.

These are the library-level checks of Theorems 6.5 / 6.6 and of the Section 7
observation that P1 coincides with P0 in the limited-information contexts, for
the smallest nontrivial system size (n = 3, t = 1).  Larger sizes live in the
slow test module.
"""

import pytest

from repro.core.types import DECIDE_1, NOOP
from repro.kbp import (
    TableProtocol,
    check_implements,
    derive_implementation,
    make_p0,
    make_p1,
    programs_equivalent,
)
from repro.protocols import BasicProtocol, DelayedMinProtocol, MinProtocol
from repro.systems import gamma_basic, gamma_min


@pytest.fixture(scope="module")
def min_context():
    return gamma_min(3, 1)


@pytest.fixture(scope="module")
def basic_context():
    return gamma_basic(3, 1)


@pytest.fixture(scope="module")
def min_system(min_context):
    return min_context.build_system(MinProtocol(1))


@pytest.fixture(scope="module")
def basic_system(basic_context):
    return basic_context.build_system(BasicProtocol(1))


class TestTheorem65:
    def test_pmin_implements_p0(self, min_context, min_system):
        report = check_implements(MinProtocol(1), make_p0(3), min_context, system=min_system)
        assert report.ok
        assert report.checked_states > 0
        assert "implements" in repr(report)

    def test_pmin_implements_p1_as_well(self, min_context, min_system):
        # P1 degenerates to P0 in gamma_min, so P_min implements it too.
        report = check_implements(MinProtocol(1), make_p1(3, 1), min_context, system=min_system)
        assert report.ok

    def test_delayed_min_does_not_implement_p0(self, min_context):
        report = check_implements(DelayedMinProtocol(1, delay=1), make_p0(3), min_context)
        assert not report.ok
        assert report.mismatches
        mismatch = report.mismatches[0]
        assert mismatch.prescribed_action == DECIDE_1
        assert mismatch.concrete_action == NOOP


class TestTheorem66:
    def test_pbasic_implements_p0(self, basic_context, basic_system):
        report = check_implements(BasicProtocol(1), make_p0(3), basic_context,
                                  system=basic_system)
        assert report.ok

    def test_pmin_rules_do_not_implement_p0_over_basic_exchange(self, basic_context):
        # Using P_min's decision rule over E_basic is *not* an implementation of
        # P0: with the extra (init, 1) heartbeats an agent sometimes knows that
        # nobody can be deciding 0 before round t+2, and P0 requires it to act
        # on that knowledge.
        class MinRulesOverBasic(BasicProtocol):
            name = "P_min_rules_over_basic"

            def act(self, state):
                from repro.core.types import DECIDE_0 as D0, DECIDE_1 as D1, NOOP as N

                if state.decided is not None:
                    return N
                if state.init == 0 or state.jd == 0:
                    return D0
                if state.time == self.t + 1:
                    return D1
                return N

        report = check_implements(MinRulesOverBasic(1), make_p0(3), basic_context)
        assert not report.ok


class TestProgramEquivalence:
    def test_p0_equals_p1_in_gamma_min(self, min_system):
        assert programs_equivalent(make_p0(3), make_p1(3, 1), min_system)

    def test_p0_equals_p1_in_gamma_basic(self, basic_system):
        assert programs_equivalent(make_p0(3), make_p1(3, 1), basic_system)

    def test_p0_differs_from_a_trivial_program(self, min_system):
        from repro.kbp.programs import GuardedClause, KnowledgeBasedProgram, LocalProgram
        from repro.logic import TRUE

        always_noop = KnowledgeBasedProgram(
            "noop", [LocalProgram(agent, (GuardedClause(TRUE, NOOP),)) for agent in range(3)])
        assert not programs_equivalent(make_p0(3), always_noop, min_system)


class TestSynthesis:
    def test_derived_implementation_matches_pmin(self, min_context):
        derived, converged = derive_implementation(make_p0(3), min_context,
                                                   seed=MinProtocol(1))
        assert converged
        assert isinstance(derived, TableProtocol)
        protocol = MinProtocol(1)
        assert all(protocol.act(state) == action
                   for (_agent, state), action in derived.table.items())

    def test_synthesis_converges_from_a_lazy_seed(self, min_context):
        # Even when seeded with a protocol that is too slow, the iteration
        # reaches a fixed point whose prescriptions match P_min's.
        derived, converged = derive_implementation(make_p0(3), min_context,
                                                   seed=DelayedMinProtocol(1, delay=1),
                                                   max_iterations=6)
        assert converged
        protocol = MinProtocol(1)
        mismatches = [
            (state, action)
            for (_agent, state), action in derived.table.items()
            if protocol.act(state) != action
        ]
        assert mismatches == []

    def test_table_protocol_falls_back_to_noop(self, min_context):
        derived, _ = derive_implementation(make_p0(3), min_context, seed=MinProtocol(1))
        from repro.exchange.base import LocalState

        unseen = LocalState(agent=0, n=3, time=7, init=1, decided=None, jd=None)
        assert derived.act(unseen) == NOOP
