"""Unit tests for the baseline protocols (naive 0-biased, delayed, eager)."""

import pytest

from repro.protocols import DelayedMinProtocol, EagerOneProtocol, MinProtocol, NaiveZeroBiasedProtocol
from repro.simulation import corresponding_runs, simulate
from repro.spec import check_eba
from repro.workloads import all_ones, hidden_chain_scenario, intro_counterexample


class TestNaiveZeroBiased:
    def test_violates_agreement_on_intro_counterexample(self):
        preferences, pattern = intro_counterexample(n=4, t=1)
        trace = simulate(NaiveZeroBiasedProtocol(1), 4, preferences, pattern)
        report = check_eba(trace)
        assert report.agreement, "the naive protocol must split the nonfaulty decisions"

    def test_is_fine_without_failures(self):
        trace = simulate(NaiveZeroBiasedProtocol(1), 4, [0, 1, 1, 1])
        assert check_eba(trace).ok
        assert all(trace.decision_value(agent) == 0 for agent in range(4))

    def test_decides_one_after_deadline_when_no_zero(self):
        trace = simulate(NaiveZeroBiasedProtocol(2), 4, all_ones(4))
        assert all(trace.decision_value(agent) == 1 for agent in range(4))
        assert all(trace.decision_round(agent) == 4 for agent in range(4))


class TestDelayedMin:
    def test_is_a_correct_eba_protocol(self):
        preferences, pattern = hidden_chain_scenario(5, chain_length=1)
        trace = simulate(DelayedMinProtocol(2, delay=2), 5, preferences, pattern)
        assert check_eba(trace).ok

    def test_strictly_dominated_by_pmin_on_all_ones(self):
        from repro.failures import FailurePattern

        runs = corresponding_runs(
            [MinProtocol(2), DelayedMinProtocol(2, delay=2)], 5, all_ones(5),
            pattern=FailurePattern.failure_free(5))
        assert runs["P_min"].last_decision_round() == 4
        assert runs["P_min_delayed(2)"].last_decision_round() == 6

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            DelayedMinProtocol(1, delay=-1)

    def test_zero_decisions_are_not_delayed(self):
        trace = simulate(DelayedMinProtocol(1, delay=3), 4, [0, 1, 1, 1])
        assert trace.decision_round(1) == 2
        assert trace.decision_value(1) == 0


class TestEagerOne:
    def test_violates_agreement_on_hidden_chain(self):
        # A faulty agent with preference 0 that talks only to one nonfaulty
        # agent delivers the 0 after the impatient agents have already decided
        # 1, splitting the nonfaulty decisions.
        preferences, pattern = hidden_chain_scenario(6, chain_length=1)
        trace = simulate(EagerOneProtocol(1, patience=1), 6, preferences, pattern)
        report = check_eba(trace)
        assert not report.ok
        assert report.agreement

    def test_rejects_non_positive_patience(self):
        with pytest.raises(ValueError):
            EagerOneProtocol(1, patience=0)

    def test_fine_when_everyone_prefers_one_and_no_failures(self):
        trace = simulate(EagerOneProtocol(1, patience=1), 4, all_ones(4))
        assert check_eba(trace).ok
