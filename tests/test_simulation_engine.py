"""Unit tests for the synchronous simulation engine."""

import pytest

from repro.core.errors import ConfigurationError, ProtocolError
from repro.core.types import DECIDE_0, NOOP
from repro.exchange import DecideNotification
from repro.failures import FailurePattern
from repro.protocols import BasicProtocol, MinProtocol, OptimalFipProtocol
from repro.protocols.base import ActionProtocol
from repro.simulation import simulate, step


class TestSimulate:
    def test_deterministic(self):
        a = simulate(MinProtocol(1), 4, [0, 1, 1, 1])
        b = simulate(MinProtocol(1), 4, [0, 1, 1, 1])
        assert a.decisions() == b.decisions()
        assert [r.actions for r in a.rounds] == [r.actions for r in b.rounds]

    def test_stops_when_everyone_decided(self):
        trace = simulate(MinProtocol(1), 4, [0, 1, 1, 1])
        assert trace.all_decided()
        assert trace.horizon == 2

    def test_explicit_horizon_is_respected(self):
        trace = simulate(MinProtocol(1), 4, [0, 1, 1, 1], horizon=5)
        assert trace.horizon == 5

    def test_defaults_to_failure_free(self):
        trace = simulate(MinProtocol(1), 4, [1, 1, 1, 1])
        assert trace.pattern == FailurePattern.failure_free(4)

    def test_rejects_mismatched_pattern_size(self):
        with pytest.raises(ConfigurationError):
            simulate(MinProtocol(1), 4, [1, 1, 1, 1], FailurePattern.failure_free(5))

    def test_rejects_bad_preferences(self):
        with pytest.raises(ValueError):
            simulate(MinProtocol(1), 4, [1, 1, 1])

    def test_rejects_t_not_below_n(self):
        with pytest.raises(ConfigurationError):
            simulate(MinProtocol(4), 4, [1, 1, 1, 1])

    def test_non_terminating_protocol_raises(self):
        class StallingProtocol(ActionProtocol):
            name = "P_stall"

            def make_exchange(self, n):
                return MinProtocol(self.t).make_exchange(n)

            def act(self, state):
                return NOOP

        with pytest.raises(ProtocolError):
            simulate(StallingProtocol(1), 3, [1, 1, 1])

    def test_omissions_suppress_delivery_but_not_sending(self):
        pattern = FailurePattern.from_blocked(3, [(0, 0, 1)])
        trace = simulate(MinProtocol(1), 3, [0, 1, 1], pattern, horizon=3)
        record = trace.rounds[0]
        assert record.sent[0][1] == DecideNotification(0)
        assert record.delivered[1][0] is None
        assert record.delivered[2][0] == DecideNotification(0)

    def test_messages_to_self_are_delivered(self):
        trace = simulate(BasicProtocol(1), 3, [1, 1, 1], horizon=1)
        record = trace.rounds[0]
        assert record.delivered[0][0] is not None

    def test_round_record_round_numbering(self):
        trace = simulate(MinProtocol(1), 3, [0, 1, 1])
        assert [record.round_number for record in trace.rounds] == [1, 2]


class TestStep:
    def test_single_step_updates_all_states(self):
        protocol = MinProtocol(1)
        exchange = protocol.make_exchange(3)
        states = [exchange.initial_state(agent, init) for agent, init in enumerate([0, 1, 1])]
        new_states, record = step(exchange, protocol, states, FailurePattern.failure_free(3), 0)
        assert all(state.time == 1 for state in new_states)
        assert record.actions[0] == DECIDE_0
        assert record.actions[1] == NOOP

    def test_bits_by_sender_accounting(self):
        protocol = MinProtocol(1)
        exchange = protocol.make_exchange(3)
        states = [exchange.initial_state(agent, init) for agent, init in enumerate([0, 1, 1])]
        _, record = step(exchange, protocol, states, FailurePattern.failure_free(3), 0)
        # Agent 0 decides and broadcasts a 1-bit message to 3 agents; others silent.
        assert record.bits_by_sender == (3, 0, 0)


class TestFipSimulation:
    def test_fip_trace_records_graph_growth(self):
        trace = simulate(OptimalFipProtocol(1), 3, [1, 1, 1], horizon=2)
        assert trace.state_of(0, 0).graph.time == 0
        assert trace.state_of(0, 2).graph.time == 2

    def test_fip_decisions_recorded_in_state(self):
        trace = simulate(OptimalFipProtocol(1), 3, [1, 1, 1])
        final_time = trace.horizon
        assert all(trace.state_of(agent, final_time).decided == 1 for agent in range(3))
