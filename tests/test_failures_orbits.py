"""Agent-permutation symmetry: ``FailurePattern.relabel`` and pattern orbits.

The symmetry-reduction contract is exactness: the orbits a model enumerates
must *partition* its full pattern enumeration — every orbit expands to
distinct admissible patterns, distinct orbits are disjoint, their union is the
enumerated set, and the sizes sum to the exact pattern count.  These tests pin
that contract for every registered model, plus the orbit-weighted experiment
counting path (E5) built on top of it.
"""

import itertools

import pytest

from repro.core.errors import ConfigurationError
from repro.failures.models import (
    CrashModel,
    FailureFreeModel,
    GeneralOmissionModel,
    PatternOrbit,
    ReceiveOmissionModel,
    SendingOmissionModel,
)
from repro.failures.pattern import FailurePattern
from repro.systems import gamma_min


class TestRelabel:
    def test_relabel_moves_every_role(self):
        pattern = FailurePattern(
            n=3, faulty=frozenset({0, 2}),
            omissions=frozenset({(0, 0, 1)}),
            receive_omissions=frozenset({(1, 1, 2)}),
        )
        relabelled = pattern.relabel((2, 0, 1))  # 0->2, 1->0, 2->1
        assert relabelled.faulty == frozenset({2, 1})
        assert relabelled.omissions == frozenset({(0, 2, 0)})
        assert relabelled.receive_omissions == frozenset({(1, 0, 1)})

    def test_identity_and_inverse(self):
        pattern = FailurePattern.silent(4, faulty=[1], horizon=2)
        identity = tuple(range(4))
        assert pattern.relabel(identity) == pattern
        permutation = (3, 2, 1, 0)
        assert pattern.relabel(permutation).relabel(permutation) == pattern

    def test_non_permutation_rejected(self):
        pattern = FailurePattern.failure_free(3)
        with pytest.raises(ConfigurationError, match="permutation"):
            pattern.relabel((0, 0, 1))
        with pytest.raises(ConfigurationError, match="permutation"):
            pattern.relabel((0, 1))


MODELS = [
    SendingOmissionModel(n=3, t=1),
    ReceiveOmissionModel(n=3, t=1),
    GeneralOmissionModel(n=3, t=1),
    SendingOmissionModel(n=4, t=2),
    CrashModel(n=3, t=1),
    FailureFreeModel(3),
]


class TestOrbitEnumeration:
    @pytest.mark.parametrize("model", MODELS, ids=lambda model: model.name)
    def test_orbits_partition_the_full_enumeration(self, model):
        horizon = 2
        full = set(model.enumerate(horizon))
        orbits = list(model.enumerate_orbits(horizon))
        expanded = [pattern for orbit in orbits for pattern in orbit.expand()]
        # exact cover, no duplicates across or within orbits
        assert len(expanded) == len(set(expanded)) == len(full)
        assert set(expanded) == full
        # sizes are exact
        assert [orbit.size for orbit in orbits] == [len(orbit.expand()) for orbit in orbits]
        assert sum(orbit.size for orbit in orbits) == len(full)

    @pytest.mark.parametrize("model", MODELS, ids=lambda model: model.name)
    def test_representatives_are_canonical(self, model):
        for orbit in model.enumerate_orbits(2):
            members = orbit.expand()
            assert orbit.representative == members[0]
            assert orbit.representative == min(members, key=FailurePattern.sort_key)

    def test_sizes_sum_to_the_closed_form_count(self):
        model = SendingOmissionModel(n=4, t=1)
        orbits = list(model.enumerate_orbits(3))
        assert sum(orbit.size for orbit in orbits) == model.count_patterns(3)

    def test_count_orbits_matches_enumeration(self):
        model = GeneralOmissionModel(n=3, t=1)
        assert model.count_orbits(2) == len(list(model.enumerate_orbits(2)))

    def test_orbit_sizes_divide_the_group_order(self):
        """Orbit-stabiliser: every orbit size divides n! exactly."""
        model = SendingOmissionModel(n=4, t=1)
        group_order = 24
        for orbit in model.enumerate_orbits(2):
            assert group_order % orbit.size == 0

    def test_context_orbits_cover_the_context_patterns(self):
        context = gamma_min(3, 1)
        expanded = {
            pattern
            for orbit in context.orbits()
            for pattern in orbit.expand()
        }
        assert expanded == set(context.patterns())

    def test_orbit_is_closed_under_every_permutation(self):
        model = ReceiveOmissionModel(n=3, t=1)
        for orbit in itertools.islice(model.enumerate_orbits(2), 10):
            members = set(orbit.expand())
            for permutation in itertools.permutations(range(3)):
                assert {m.relabel(permutation) for m in members} == members


class TestWeightedExperimentCounts:
    def test_e5_symmetry_reduced_counts_match_full_enumeration(self):
        """The orbit-weighted E5 counting path is exact, not approximate."""
        from repro.experiments.termination_bound import (
            exhaustive_workload,
            measure_termination,
            symmetry_reduced_workload,
        )
        from repro.protocols import BasicProtocol, MinProtocol, NaiveZeroBiasedProtocol

        n, t = 3, 1
        protocols = [MinProtocol(t), BasicProtocol(t), NaiveZeroBiasedProtocol(t)]
        full = measure_termination(n, t, exhaustive_workload(n, t), protocols=protocols)
        scenarios, weights = symmetry_reduced_workload(n, t)
        assert len(scenarios) < len(exhaustive_workload(n, t))
        reduced = measure_termination(n, t, scenarios, protocols=protocols,
                                      weights=weights)
        for full_row, reduced_row in zip(full, reduced):
            assert reduced_row.runs == full_row.runs
            assert reduced_row.spec_violations == full_row.spec_violations
            assert reduced_row.worst_decision_round == full_row.worst_decision_round
            assert reduced_row.within_bound == full_row.within_bound

    def test_mismatched_weights_rejected(self):
        from repro.experiments.termination_bound import measure_termination

        with pytest.raises(ValueError, match="weights"):
            measure_termination(3, 1, [((1, 1, 1), None)], weights=[1, 2])


class TestPatternOrbitValue:
    def test_orbit_is_hashable_and_tokenisable(self):
        """Orbits flow into build_system and store keys; both need value semantics."""
        from repro.store.keys import token

        orbit = next(iter(SendingOmissionModel(n=3, t=1).enumerate_orbits(2)))
        assert isinstance(orbit, PatternOrbit)
        assert hash(orbit) == hash(PatternOrbit(orbit.representative, orbit.size))
        token(orbit)  # must not raise
