"""Unit tests for repro.failures.adversaries."""

import pytest

from repro.core.errors import ConfigurationError
from repro.failures import (
    crash_staircase_adversary,
    hidden_chain_adversary,
    intro_counterexample_adversary,
    iter_faulty_sets,
    random_omission_adversaries,
    silent_adversary,
)


class TestSilentAdversary:
    def test_blocks_all_messages_from_faulty(self):
        pattern = silent_adversary(5, faulty=[0, 1], horizon=3)
        assert pattern.faulty == frozenset({0, 1})
        for sender in (0, 1):
            for round_index in range(3):
                for receiver in range(5):
                    if receiver != sender:
                        assert not pattern.delivered(round_index, sender, receiver)

    def test_nonfaulty_messages_untouched(self):
        pattern = silent_adversary(5, faulty=[0], horizon=3)
        assert pattern.delivered(0, 2, 3)


class TestIntroCounterexample:
    def test_single_message_gets_through(self):
        pattern = intro_counterexample_adversary(4, reveal_round=2,
                                                 faulty_agent=0, confidant=2)
        assert pattern.faulty == frozenset({0})
        # Round 2 (round_index 1): only the confidant hears from the faulty agent.
        assert pattern.delivered(1, 0, 2)
        assert not pattern.delivered(1, 0, 1)
        assert not pattern.delivered(1, 0, 3)
        # Round 1: nobody hears from it.
        assert not pattern.delivered(0, 0, 2)

    def test_requires_three_agents(self):
        with pytest.raises(ConfigurationError):
            intro_counterexample_adversary(2, reveal_round=1)

    def test_rejects_confidant_equal_to_faulty(self):
        with pytest.raises(ConfigurationError):
            intro_counterexample_adversary(4, reveal_round=1, faulty_agent=1, confidant=1)

    def test_rejects_zero_reveal_round(self):
        with pytest.raises(ConfigurationError):
            intro_counterexample_adversary(4, reveal_round=0)


class TestHiddenChain:
    def test_chain_links_survive(self):
        pattern = hidden_chain_adversary(5, chain=(0, 1, 2))
        # Round 1: agent 0 reaches only agent 1.
        assert pattern.delivered(0, 0, 1)
        assert not pattern.delivered(0, 0, 2)
        # Round 2: agent 1 reaches only agent 2.
        assert pattern.delivered(1, 1, 2)
        assert not pattern.delivered(1, 1, 3)

    def test_last_chain_agent_is_nonfaulty(self):
        pattern = hidden_chain_adversary(5, chain=(0, 1, 2))
        assert pattern.faulty == frozenset({0, 1})

    def test_rejects_duplicate_agents(self):
        with pytest.raises(ConfigurationError):
            hidden_chain_adversary(5, chain=(0, 1, 0))

    def test_rejects_out_of_range_agents(self):
        with pytest.raises(ConfigurationError):
            hidden_chain_adversary(3, chain=(0, 5))

    def test_singleton_chain_has_no_faulty_agents(self):
        pattern = hidden_chain_adversary(4, chain=(2,))
        assert pattern.faulty == frozenset()


class TestCrashStaircase:
    def test_one_crash_per_round(self):
        pattern = crash_staircase_adversary(5, t=3)
        assert pattern.faulty == frozenset({0, 1, 2})
        # Agent 0 crashes in round 1 reaching only agent 1.
        assert pattern.delivered(0, 0, 1)
        assert not pattern.delivered(0, 0, 2)
        # Agent 1 crashes in round 2: its round-1 messages are fine.
        assert pattern.delivered(0, 1, 4)
        assert not pattern.delivered(1, 1, 3)

    def test_rejects_t_equal_n(self):
        with pytest.raises(ConfigurationError):
            crash_staircase_adversary(3, t=3)


class TestRandomAdversaries:
    def test_reproducible(self):
        first = random_omission_adversaries(5, 2, horizon=3, count=4, seed=9)
        second = random_omission_adversaries(5, 2, horizon=3, count=4, seed=9)
        assert first == second

    def test_count_and_bound(self):
        patterns = random_omission_adversaries(5, 2, horizon=3, count=6, seed=1)
        assert len(patterns) == 6
        assert all(p.num_faulty <= 2 for p in patterns)


def test_iter_faulty_sets_enumerates_all_small_subsets():
    sets = list(iter_faulty_sets(4, 2))
    assert frozenset() in sets
    assert frozenset({3}) in sets
    assert frozenset({1, 2}) in sets
    assert all(len(s) <= 2 for s in sets)
    assert len(sets) == 1 + 4 + 6
