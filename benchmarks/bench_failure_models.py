"""Benchmark E12 — the protocol sweep across failure models (SO / RO / GO).

Times the behaviour half of the failure-model comparison at a moderate size
(the theorem half is covered by ``bench_model_checking.py``, whose system
builds dominate it).  The assertions pin the headline result: the paper's
three protocols satisfy every EBA clause under all three omission models.
"""

from repro.experiments import failure_model_comparison


def test_bench_failure_model_sweep(benchmark):
    rows = benchmark.pedantic(failure_model_comparison.measure_behaviour,
                              kwargs={"n": 8, "t": 2, "count": 25, "seed": 23},
                              rounds=1, iterations=1)
    assert len(rows) == 9
    for row in rows:
        assert row.agreement_violations == 0, row
        assert row.validity_violations == 0, row
        assert row.termination_violations == 0, row
