"""Benchmark E5 — Proposition 6.1: every agent decides by round t + 2.

Paper: all implementations of ``P0`` terminate after at most ``t + 1`` rounds of
message exchange (decisions by round ``t + 2``), with Validity holding even for
faulty agents; the FIP implementation of ``P1`` obeys the same bound.
"""

from repro.experiments import termination_bound


def test_bench_worst_case_decision_round(benchmark):
    n, t = 8, 3
    scenarios = termination_bound.adversarial_workload(n, t, random_count=30, seed=3)
    measurements = benchmark.pedantic(
        termination_bound.measure_termination, args=(n, t, scenarios), rounds=1, iterations=1)
    for measurement in measurements:
        assert measurement.within_bound
        assert measurement.spec_violations == 0
        assert measurement.worst_decision_round <= t + 2


def test_bench_exhaustive_small_system(benchmark):
    """Exhaustive SO(1) adversaries for n = 3 (every pattern, every preference)."""
    n, t = 3, 1
    scenarios = termination_bound.exhaustive_workload(n, t)
    measurements = benchmark.pedantic(
        termination_bound.measure_termination, args=(n, t, scenarios), rounds=1, iterations=1)
    for measurement in measurements:
        assert measurement.within_bound
        assert measurement.spec_violations == 0
