"""Benchmark E10 — the one-step-deviation optimality probe (Corollary 6.7).

Paper: ``P_min`` and ``P_basic`` are optimal with respect to their contexts.
The probe tries every protocol at Hamming distance one from their decision
tables (on reachable states, over the exhaustively enumerated SO(t) context)
and checks that each such speed-up either violates EBA or fails to dominate.
"""

from repro.experiments import optimality_probe


def test_bench_probe_pmin_exhaustive(benchmark):
    report = benchmark.pedantic(optimality_probe.probe_pmin, kwargs={"n": 3, "t": 1},
                                rounds=1, iterations=1)
    assert report.deviations_tried >= 20
    assert report.consistent_with_optimality


def test_bench_probe_pbasic_exhaustive(benchmark):
    report = benchmark.pedantic(optimality_probe.probe_pbasic, kwargs={"n": 3, "t": 1},
                                rounds=1, iterations=1)
    assert report.deviations_tried >= 20
    assert report.consistent_with_optimality
