"""Performance benchmarks for the simulation substrate itself.

These do not correspond to a table in the paper; they document how the
simulator and the polynomial-time ``P_opt`` decision procedure scale with the
number of agents, which is what limits reproducing Example 7.1 at its original
size in pure Python (the repro band notes "easy simulation; slow for large
node counts").

The benchmarks drive the simulator through :class:`repro.api.RunSpec`, the
declarative single-run entry point of the orchestration layer (see
``bench_parallel_sweep.py`` for the batched executor backends).
"""

import pytest

from repro.api import RunSpec
from repro.protocols import BasicProtocol, MinProtocol, OptimalFipProtocol
from repro.workloads import all_ones, example_7_1, single_zero


@pytest.mark.parametrize("n", [10, 20, 40])
def test_bench_pmin_failure_free(benchmark, n):
    spec = RunSpec(MinProtocol(n // 4), n, single_zero(n))
    trace = benchmark(spec.run)
    assert trace.last_decision_round() == 2


@pytest.mark.parametrize("n", [10, 20, 40])
def test_bench_pbasic_all_ones(benchmark, n):
    spec = RunSpec(BasicProtocol(n // 4), n, all_ones(n))
    trace = benchmark(spec.run)
    assert trace.last_decision_round() == 2


@pytest.mark.parametrize("n", [6, 10, 14])
def test_bench_popt_silent_faulty(benchmark, n):
    t = n // 2 - 1
    preferences, pattern = example_7_1(n=n, t=t)
    spec = RunSpec(OptimalFipProtocol(t), n, preferences, pattern)
    trace = benchmark.pedantic(spec.run, rounds=1, iterations=1)
    assert trace.last_decision_round(nonfaulty_only=True) == 3
