"""Benchmark — batched vs per-run cold system construction.

The acceptance bar for the batched round-major engine
(:mod:`repro.simulation.batch`) is quantitative: a cold ``build_system`` of the
full ``γ_min`` system at (n=4, t=1) — no artifact store, nothing warm — must be
at least **5× faster** batched than per-run, with byte-identical traces.  This
file measures exactly that, at (n=3, t=1) and (n=4, t=1):

* ``per_run`` — the original engine: one ``simulate()`` call per
  (pattern, preference-vector) pair, exchange constructed per run;
* ``batched`` — the default engine: all runs advance together one round at a
  time, sharing ``act``/``messages_for`` per distinct local state and whole
  round transitions per distinct (global state, blocked-edge set) class, with
  the agent partitions emitted during construction.

The batched/per-run ratio at n=4 is asserted (≥ 5×; in practice ~15–20× on
the development container), and so is per-trace byte identity at n=3, making
this benchmark double as the acceptance check — the same pattern as
``bench_store.py``.  ``tools/bench_summary.py`` includes this file in the
canonical ``BENCH_<date>.json``.

Reference numbers on the development container (1 core): per-run cold build
≈ 0.13 s at n=3 and ≈ 5.3 s at n=4; batched ≈ 0.02 s and ≈ 0.31 s (~17×).
"""

import pickle

import pytest

from repro.protocols import MinProtocol
from repro.systems import gamma_min

SIZES = [(3, 1), (4, 1)]

#: The acceptance-criterion floor for the batched/per-run build speedup at n=4.
MIN_SPEEDUP = 5.0

#: Cold per-run timings, recorded by test_bench_per_run_build and consumed by
#: the speedup assertion in test_bench_batched_build (pytest runs this module's
#: tests in definition order).
_PER_RUN_SECONDS = {}


def _build(n, t, engine):
    return gamma_min(n, t).build_system(MinProtocol(t), engine=engine)


@pytest.mark.parametrize("size", SIZES, ids=lambda size: f"n{size[0]}_t{size[1]}")
def test_bench_per_run_build(benchmark, size):
    """The oracle engine: one simulate() call per run."""
    n, t = size
    system = benchmark.pedantic(lambda: _build(n, t, "per-run"), rounds=1, iterations=1)
    _PER_RUN_SECONDS[size] = benchmark.stats.stats.mean
    assert len(system.runs) > 0


@pytest.mark.parametrize("size", SIZES, ids=lambda size: f"n{size[0]}_t{size[1]}")
def test_bench_batched_build(benchmark, size):
    """The batched engine, asserted ≥ 5× faster at n=4 and byte-identical at n=3."""
    n, t = size
    system = benchmark.pedantic(lambda: _build(n, t, "batched"),
                                rounds=3, iterations=1)
    batched_seconds = benchmark.stats.stats.mean
    per_run_seconds = _PER_RUN_SECONDS.get(size)
    assert per_run_seconds is not None, "per-run benchmark must run first"
    if n == 3:
        reference = _build(n, t, "per-run")
        assert len(system.runs) == len(reference.runs)
        for batched_trace, per_run_trace in zip(system.runs, reference.runs):
            assert pickle.dumps(batched_trace) == pickle.dumps(per_run_trace)
    if n >= 4:
        speedup = per_run_seconds / batched_seconds
        assert speedup >= MIN_SPEEDUP, (
            f"batched build_system at n={n} is only {speedup:.1f}x faster than "
            f"per-run ({batched_seconds:.2f}s vs {per_run_seconds:.2f}s); the "
            f"batched engine promises >= {MIN_SPEEDUP}x"
        )
