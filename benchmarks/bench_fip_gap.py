"""Benchmark E8 — Section 8 discussion: how much does full information buy?

Paper: in failure-free runs ``P_basic`` decides as fast as the FIP, and the
authors conjecture the gap stays small even with failures.  The benchmark
quantifies the per-agent decision-round gap over random omission adversaries
and over the silent-faulty sweep (the FIP's best case).
"""

from repro.experiments import fip_gap


def test_bench_random_adversary_gap(benchmark):
    measurements = benchmark.pedantic(
        fip_gap.random_gap_study,
        kwargs={"n": 8, "t": 3, "count": 30, "seed": 11}, rounds=1, iterations=1)
    for measurement in measurements:
        # The conjecture: typically not much worse — under a round on average.
        assert measurement.mean_gap <= 1.0
        assert measurement.fraction_equal >= 0.5


def test_bench_worst_case_gap(benchmark):
    measurements = benchmark.pedantic(
        fip_gap.worst_case_gap_study, kwargs={"n": 8, "t": 3}, rounds=1, iterations=1)
    by_protocol = {m.protocol: m for m in measurements}
    # The silent-faulty sweep is where the FIP shines: P_min pays the most.
    assert by_protocol["P_min"].max_gap >= 2
    assert by_protocol["P_min"].mean_gap >= by_protocol["P_basic"].mean_gap
