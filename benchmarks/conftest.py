"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's quantitative results (see
DESIGN.md's per-experiment index and EXPERIMENTS.md for the measured values).
The benchmarks assert the qualitative *shape* of each claim — who wins and by
roughly what factor — and time the experiment driver that produces it.
"""

import pytest


@pytest.fixture(scope="session")
def medium_size():
    """The (n, t) used by the medium-sized benchmark runs."""
    return 10, 4
