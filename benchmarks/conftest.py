"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's quantitative results (see
DESIGN.md's per-experiment index and EXPERIMENTS.md for the measured values).
The benchmarks assert the qualitative *shape* of each claim — who wins and by
roughly what factor — and time the experiment driver that produces it.
"""

import json
import os

import pytest


@pytest.fixture(scope="session")
def medium_size():
    """The (n, t) used by the medium-sized benchmark runs."""
    return 10, 4


def pytest_sessionfinish(session, exitstatus):
    """Dump the session's peak RSS and metrics snapshot for bench_summary.

    ``tools/bench_summary.py`` runs each suite as its own pytest process with
    ``REPRO_OBS_DUMP`` pointing at a temp file; recording here (inside the
    measured process, after every benchmark ran) is what makes the numbers
    attributable to one suite.
    """
    dump_path = os.environ.get("REPRO_OBS_DUMP")
    if not dump_path:
        return
    import resource

    from repro.obs.metrics import REGISTRY

    payload = {
        # Linux reports ru_maxrss in KiB (macOS in bytes; the consumer only
        # compares like with like, so the unit just travels with the key).
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "metrics": REGISTRY.snapshot(),
    }
    try:
        with open(dump_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
    except OSError:
        pass
