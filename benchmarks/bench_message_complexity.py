"""Benchmark E1 — Proposition 8.1: bits sent per failure-free run.

Paper: ``P_min`` sends exactly ``n²`` bits, ``P_basic`` sends ``O(n² t)`` bits,
and a communication-graph FIP sends ``O(n⁴ t²)`` bits per run.
"""

from repro.experiments import message_complexity


def test_bench_bits_limited_exchanges(benchmark):
    """Time the P_min / P_basic bit measurement over an (n, t) sweep."""
    settings = ((5, 1), (10, 3), (20, 6), (40, 10))
    rows = benchmark(message_complexity.sweep_bits, settings, include_fip=False)
    by_protocol = {}
    for row in rows:
        by_protocol.setdefault((row.protocol, row.n, row.t), []).append(row.bits)
    for (protocol, n, t), bits in by_protocol.items():
        if protocol == "P_min":
            assert set(bits) == {n * n}
        else:
            assert max(bits) <= 4 * n * n * (t + 1)


def test_bench_bits_full_information(benchmark):
    """Time the FIP bit measurement (smaller sweep: each message is O(n² t) bits)."""
    settings = ((5, 1), (10, 3), (16, 5))
    rows = benchmark.pedantic(message_complexity.sweep_bits, args=(settings,),
                              kwargs={"include_fip": True}, rounds=1, iterations=1)
    fip_rows = [row for row in rows if row.protocol == "P_opt"]
    limited_rows = [row for row in rows if row.protocol != "P_opt"]
    assert all(row.within_bound for row in rows)
    # The FIP pays at least an order of magnitude more bits than the limited
    # exchanges at every size in the sweep.
    for n, t in settings:
        fip_bits = min(row.bits for row in fip_rows if row.n == n)
        limited_bits = max(row.bits for row in limited_rows if row.n == n)
        assert fip_bits > 10 * limited_bits
