"""Benchmark E7 — Theorems 6.5 / 6.6: the concrete protocols implement ``P0``.

Paper: ``P_min`` implements the knowledge-based program ``P0`` in ``γ_min`` and
``P_basic`` implements it in ``γ_basic`` (for ``t ≤ n - 2``); moreover ``P1``
prescribes exactly the same actions as ``P0`` in those limited-information
contexts.  The benchmark verifies this by exhaustive model checking at n = 3
(n = 4 is exercised by the slow test suite).
"""

import pytest

from repro.experiments import implementation_check


def test_bench_theorem_6_5(benchmark):
    report = benchmark.pedantic(implementation_check.check_theorem_6_5,
                                kwargs={"n": 3, "t": 1}, rounds=1, iterations=1)
    assert report.ok
    assert report.checked_states > 0


def test_bench_theorem_6_6(benchmark):
    report = benchmark.pedantic(implementation_check.check_theorem_6_6,
                                kwargs={"n": 3, "t": 1}, rounds=1, iterations=1)
    assert report.ok


def test_bench_theorem_a21(benchmark):
    """Theorem A.21 / Proposition 7.9: P_opt implements P1 in the FIP context."""
    report = benchmark.pedantic(implementation_check.check_theorem_a21,
                                kwargs={"n": 3, "t": 1}, rounds=1, iterations=1)
    assert report.ok
    assert report.checked_states > 400


def test_bench_p0_p1_equivalence(benchmark):
    results = benchmark.pedantic(implementation_check.check_p0_p1_equivalence,
                                 kwargs={"n": 3, "t": 1}, rounds=1, iterations=1)
    assert results == {"gamma_min": True, "gamma_basic": True}
