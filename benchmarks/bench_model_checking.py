"""Benchmark — exhaustive model checking: build, implementation, and safety scans.

This times the Theorem 6.5 pipeline at (n=3, t=1) and (n=4, t=1): enumerating
the system ``I_{γ_min, P_min}`` (simulation plus local state interning),
checking that ``P_min`` implements the knowledge-based program ``P0`` over it
(pure bitset model checking), and scanning the Definition 6.2 safety condition
— the last under both strategies, ``scan="vector"`` (numpy word-array
reductions) vs ``scan="per-point"`` (the original nested loops), so the
vectorization win is asserted, not assumed.  The n=4 system has 32 784 runs /
131 136 points, which is exactly the workload that used to keep the
implementation theorems quarantined behind ``pytest -m slow``.

Reference timings on the development box, for the perf trajectory: with the
pre-PR ``frozenset[Point]`` evaluator the (n=4, t=1) ``check_implements`` pass
took ~6.5 s on a prebuilt system; the bitset core runs it in ~0.13 s (~50×),
with system construction (~5 s per-run, ~0.3 s batched) now carrying the
interning pass.  The n=4 per-point safety scan takes ~12 s; the vectorized
scan ~0.7 s (~17×), which is what put the n=5 scan (~1 min) in reach.

Results land in the standard pytest-benchmark JSON via ``--benchmark-json``,
same as every other file in this directory.
"""

import pytest

from repro.kbp import check_implements, make_p0
from repro.kbp.safety import check_safety
from repro.logic import words
from repro.protocols import MinProtocol
from repro.systems import gamma_min

SIZES = [(3, 1), (4, 1)]

#: The safety-scan strategies benchmarked head to head.
SCANS = ["vector", "per-point"]


@pytest.fixture(scope="module")
def built_systems():
    """Prebuilt systems per size, so the check benchmarks time only checking."""
    return {
        (n, t): gamma_min(n, t).build_system(MinProtocol(t))
        for n, t in SIZES
    }


@pytest.mark.parametrize("size", SIZES, ids=lambda size: f"n{size[0]}_t{size[1]}")
def test_bench_build_system(benchmark, size):
    n, t = size
    context = gamma_min(n, t)
    system = benchmark.pedantic(context.build_system, args=(MinProtocol(t),),
                                rounds=1, iterations=1)
    assert len(system.runs) > 0
    assert system.horizon == t + 2


@pytest.mark.parametrize("size", SIZES, ids=lambda size: f"n{size[0]}_t{size[1]}")
def test_bench_check_implements(benchmark, built_systems, size):
    n, t = size
    context = gamma_min(n, t)
    system = built_systems[size]

    def check():
        return check_implements(MinProtocol(t), make_p0(n), context, system=system)

    report = benchmark.pedantic(check, rounds=1, iterations=1)
    assert report.ok, report.mismatches


@pytest.mark.parametrize("scan", SCANS)
@pytest.mark.parametrize("size", SIZES, ids=lambda size: f"n{size[0]}_t{size[1]}")
def test_bench_check_safety(benchmark, built_systems, size, scan):
    """Def 6.2 safety scan, vectorized vs per-point, on a prebuilt system."""
    if scan == "vector" and not words.HAVE_NUMPY:
        pytest.skip("vectorized scan requires numpy")
    n, t = size
    context = gamma_min(n, t)
    system = built_systems[size]

    def check():
        return check_safety(MinProtocol(t), context, system=system, scan=scan)

    report = benchmark.pedantic(check, rounds=1, iterations=1)
    assert report.safe, report.violations
    assert report.points_checked == system.num_points
