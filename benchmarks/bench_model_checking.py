"""Benchmark — exhaustive model checking: ``build_system`` + ``check_implements``.

This times the two halves of the Theorem 6.5 pipeline at (n=3, t=1) and
(n=4, t=1): enumerating the system ``I_{γ_min, P_min}`` (simulation plus local
state interning) and checking that ``P_min`` implements the knowledge-based
program ``P0`` over it (pure bitset model checking).  The n=4 system has
32 784 runs / 131 136 points, which is exactly the workload that used to keep
the implementation theorems quarantined behind ``pytest -m slow``.

Reference timings on the development box, for the perf trajectory: with the
pre-PR ``frozenset[Point]`` evaluator the (n=4, t=1) ``check_implements`` pass
took ~6.5 s on a prebuilt system; the bitset core runs it in ~0.13 s (~50×),
with system construction (~5 s, simulation-dominated) now carrying the
interning pass.

Results land in the standard pytest-benchmark JSON via ``--benchmark-json``,
same as every other file in this directory.
"""

import pytest

from repro.kbp import check_implements, make_p0
from repro.protocols import MinProtocol
from repro.systems import gamma_min

SIZES = [(3, 1), (4, 1)]


@pytest.fixture(scope="module")
def built_systems():
    """Prebuilt systems per size, so the check benchmarks time only checking."""
    return {
        (n, t): gamma_min(n, t).build_system(MinProtocol(t))
        for n, t in SIZES
    }


@pytest.mark.parametrize("size", SIZES, ids=lambda size: f"n{size[0]}_t{size[1]}")
def test_bench_build_system(benchmark, size):
    n, t = size
    context = gamma_min(n, t)
    system = benchmark.pedantic(context.build_system, args=(MinProtocol(t),),
                                rounds=1, iterations=1)
    assert len(system.runs) > 0
    assert system.horizon == t + 2


@pytest.mark.parametrize("size", SIZES, ids=lambda size: f"n{size[0]}_t{size[1]}")
def test_bench_check_implements(benchmark, built_systems, size):
    n, t = size
    context = gamma_min(n, t)
    system = built_systems[size]

    def check():
        return check_implements(MinProtocol(t), make_p0(n), context, system=system)

    report = benchmark.pedantic(check, rounds=1, iterations=1)
    assert report.ok, report.mismatches
