"""Benchmark E6 — the introduction's counterexample to naive 0-biased protocols.

Paper: under sending omissions, a protocol that decides 0 as soon as it hears
about a 0 cannot satisfy EBA (a faulty agent reveals its 0 to one agent at the
last moment); protocols that decide 0 only via 0-chains are immune.
"""

from repro.experiments import agreement_violation


def test_bench_agreement_violation_sweep(benchmark):
    sizes = ((3, 1), (4, 1), (6, 2), (8, 3), (10, 4))
    measurements = benchmark(agreement_violation.sweep, sizes)
    for measurement in measurements:
        if measurement.expected_to_break:
            assert not measurement.agreement_holds, measurement
        else:
            assert measurement.agreement_holds, measurement
    naive = [m for m in measurements if m.protocol == "P_naive0"]
    assert len(naive) == len(sizes)
