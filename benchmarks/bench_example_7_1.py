"""Benchmark E3 — Example 7.1: the full-information advantage under heavy failures.

Paper (n = 20, t = 10, ten silent faulty agents, everyone prefers 1): the FIP
decides in round 3, while ``P_min`` and ``P_basic`` wait until round t + 2 = 12.
The default benchmark runs a scaled instance (n = 10, t = 5) with the same
shape — round 3 versus round t + 2 — because every full-information message
carries an O(n² t)-label graph and the pure-Python simulation of the original
size takes minutes.
"""

import pytest

from repro.experiments import example_7_1


def test_bench_example_7_1_scaled(benchmark):
    measurements = benchmark.pedantic(example_7_1.measure_example,
                                      kwargs={"n": 10, "t": 5}, rounds=1, iterations=1)
    rounds = {m.protocol: m.nonfaulty_decide_by_round for m in measurements}
    assert rounds["P_opt"] == 3
    assert rounds["P_min"] == 7
    assert rounds["P_basic"] == 7
    assert all(m.decided_value == 1 for m in measurements)


def test_bench_example_7_1_sweep(benchmark):
    """Sweep the number of silent faulty agents at n = 8, t = 4."""
    measurements = benchmark.pedantic(example_7_1.sweep_silent_faulty, args=(8, 4),
                                      rounds=1, iterations=1)
    opt = {m.silent_faulty: m.nonfaulty_decide_by_round
           for m in measurements if m.protocol == "P_opt"}
    limited = {m.silent_faulty: m.nonfaulty_decide_by_round
               for m in measurements if m.protocol == "P_min"}
    assert opt[4] == 3
    assert limited[4] == 6
    assert all(opt[k] <= limited[k] for k in opt)


def test_bench_example_7_1_paper_size(benchmark):
    """The paper's original n = 20, t = 10 instance.

    The run is short-circuited by the common-knowledge rule (everyone decides
    by round 3/12), so even with O(n² t)-bit graph messages this stays fast.
    """
    measurements = benchmark.pedantic(example_7_1.measure_example,
                                      kwargs={"n": 20, "t": 10}, rounds=1, iterations=1)
    rounds = {m.protocol: m.nonfaulty_decide_by_round for m in measurements}
    assert rounds["P_opt"] == 3
    assert rounds["P_min"] == 12
    assert rounds["P_basic"] == 12
