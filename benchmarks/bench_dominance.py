"""Benchmark E4 — Corollaries 6.7 / 7.8: dominance over corresponding runs.

Paper: ``P_min``, ``P_basic``, and the FIP are each optimal for their own
information exchange, so no protocol should strictly dominate them; the
deliberately weakened delayed baseline is strictly dominated by ``P_min``.
"""

from repro.experiments import dominance_study


def test_bench_pairwise_dominance(benchmark):
    results = benchmark.pedantic(dominance_study.study,
                                 kwargs={"n": 6, "t": 2, "random_count": 20, "seed": 7},
                                 rounds=1, iterations=1)
    richness = {"P_opt": 3, "P_basic": 2, "P_min": 1, "P_min_delayed(2)": 0}
    for (first, second), result in results.items():
        if richness[first] > richness[second]:
            assert not result.second_strictly_dominates, result.summary()
        if richness[second] > richness[first]:
            assert not result.first_strictly_dominates, result.summary()
    assert results[("P_min", "P_min_delayed(2)")].first_strictly_dominates
    assert results[("P_opt", "P_min")].first_dominates


def test_bench_dominance_small(benchmark):
    """A small configuration suitable for repeated timing."""
    results = benchmark(dominance_study.study, 5, 1, 6, 3)
    assert results[("P_min", "P_min_delayed(2)")].first_strictly_dominates
