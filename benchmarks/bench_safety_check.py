"""Benchmark E11 — Proposition 6.4: the Definition 6.2 safety condition.

Paper: ``P0`` is safe with respect to ``γ_min`` and ``γ_basic`` whenever
``n - t ≥ 2``; by Theorem 6.3 this makes ``P_min`` and ``P_basic`` optimal in
those contexts.  The benchmark checks both clauses of the condition over the
exhaustively enumerated SO(1) context at n = 3.
"""

from repro.experiments import safety_check


def test_bench_safety_gamma_min(benchmark):
    report = benchmark.pedantic(safety_check.check_gamma_min, kwargs={"n": 3, "t": 1},
                                rounds=1, iterations=1)
    assert report.safe
    assert report.clause1_checks > 1000
    assert report.clause2_checks > 1000


def test_bench_safety_gamma_basic(benchmark):
    report = benchmark.pedantic(safety_check.check_gamma_basic, kwargs={"n": 3, "t": 1},
                                rounds=1, iterations=1)
    assert report.safe
