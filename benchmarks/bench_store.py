"""Benchmark — the artifact store: cold vs warm ``build_system`` + ``check_implements``.

The acceptance bar for :mod:`repro.store` is quantitative: a warm-cache
Theorem 6.5 ``check_implements`` at (n=4, t=1) must be at least **5× faster**
than the cold run that populated the cache, with a byte-identical report.
This file measures exactly that, at (n=3, t=1) and (n=4, t=1):

* ``cold`` — empty store: enumerate and simulate the full ``γ_min`` system,
  intern it, model-check the implementation claim, and persist everything;
* ``warm`` — same call against the populated store, served end-to-end from
  the report cache (one key lookup + one small unpickle).

The warm/cold ratio is asserted (≥ 5× at both sizes — in practice it is three
to four orders of magnitude), and so is report identity, making this benchmark
double as the acceptance check.  Each parametrisation reports through
pytest-benchmark as usual (``--benchmark-json``); ``tools/bench_summary.py``
includes this file in the canonical ``BENCH_<date>.json``.

Reference numbers on the development container: cold (n=4, t=1) ≈ 0.8 s
(≈ 7 s before the batched construction engine; the system build still
dominates), warm ≈ 2 ms from a fresh process (disk + unpickle), ≈ 0.2 ms
within a process (memory LRU).
"""

import time

import pytest

from repro.kbp import check_implements, make_p0
from repro.protocols import MinProtocol
from repro.store import default_store
from repro.systems import gamma_min

SIZES = [(3, 1), (4, 1)]

#: The acceptance-criterion floor for warm/cold speedup of check_implements.
MIN_SPEEDUP = 5.0


def _check(n: int, t: int, store):
    return check_implements(MinProtocol(t), make_p0(n), gamma_min(n, t), store=store)


@pytest.mark.parametrize("size", SIZES, ids=lambda size: f"n{size[0]}_t{size[1]}")
def test_bench_cold_build_and_check(benchmark, tmp_path, size):
    """Cold path: empty store, full system build + model check + persist."""
    n, t = size

    def cold():
        store = default_store(tmp_path / f"cold-{n}-{t}-{time.monotonic_ns()}")
        return _check(n, t, store)

    report = benchmark.pedantic(cold, rounds=1, iterations=1)
    assert report.ok, report.mismatches


@pytest.mark.parametrize("size", SIZES, ids=lambda size: f"n{size[0]}_t{size[1]}")
def test_bench_warm_build_and_check(benchmark, tmp_path, size):
    """Warm path: the same check served from the populated store.

    A fresh store handle per call keeps the in-memory LRU out of the
    measurement, so this times the honest cross-process path: key hashing,
    one disk read, one gzip+unpickle.  The ≥ 5× acceptance bar (and report
    byte-identity) is asserted against a cold timing taken in the same
    process.
    """
    n, t = size
    cache_dir = tmp_path / f"warm-{n}-{t}"

    start = time.perf_counter()
    cold_report = _check(n, t, default_store(cache_dir))
    cold_seconds = time.perf_counter() - start

    warm_report = benchmark.pedantic(
        lambda: _check(n, t, default_store(cache_dir)), rounds=5, iterations=1)

    assert warm_report.ok
    assert repr(warm_report) == repr(cold_report)
    warm_seconds = benchmark.stats.stats.mean
    speedup = cold_seconds / warm_seconds
    assert speedup >= MIN_SPEEDUP, (
        f"warm check_implements at n={n} is only {speedup:.1f}x faster than cold "
        f"({warm_seconds:.4f}s vs {cold_seconds:.4f}s); the store promises >= {MIN_SPEEDUP}x"
    )
