"""Benchmark E2 — Proposition 8.2: failure-free decision rounds.

Paper: with at least one initial 0 every protocol decides by round 2; with all
initial preferences 1, ``P_min`` needs ``t + 2`` rounds while ``P_basic`` and
the FIP still decide in round 2.
"""

from repro.experiments import decision_rounds


def test_bench_failure_free_decision_rounds(benchmark):
    settings = ((5, 1), (10, 3), (20, 8))
    rows = benchmark.pedantic(decision_rounds.sweep_decision_rounds, args=(settings,),
                              rounds=1, iterations=1)
    assert all(row.matches_paper for row in rows)
    # Spot-check the headline asymmetry at the largest size.
    largest = [row for row in rows if row.n == 20 and row.scenario == "all agents prefer 1"]
    by_protocol = {row.protocol: row.last_decision_round for row in largest}
    assert by_protocol["P_min"] == 10
    assert by_protocol["P_basic"] == 2
    assert by_protocol["P_opt"] == 2


def test_bench_decision_rounds_small(benchmark):
    """A small repeatable configuration for timing the simulator itself."""
    rows = benchmark(decision_rounds.measure_decision_rounds, 8, 3)
    assert all(row.matches_paper for row in rows)
