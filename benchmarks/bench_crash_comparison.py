"""Benchmark E9 — crash failures vs sending omissions (0-bias ablation).

Paper (introduction / Section 6): with crash failures a 0 can only spread via
what is in effect a 0-chain, so the classical "decide 0 when you hear about a
0" rule is correct; with sending omissions it violates Agreement, which is why
``P0`` insists on 0-chains.
"""

from repro.experiments import crash_comparison


def test_bench_crash_vs_omissions(benchmark):
    rows = benchmark.pedantic(crash_comparison.measure,
                              kwargs={"n": 8, "t": 3, "count": 25, "seed": 17},
                              rounds=1, iterations=1)
    for row in rows:
        if row.failure_model.startswith("Crash"):
            assert row.spec_violations == 0, row
        elif row.protocol == "P_naive0":
            assert row.spec_violations == 1, row
        else:
            assert row.spec_violations == 0, row
