"""Benchmark — SerialExecutor vs ParallelExecutor on a 500-scenario sweep.

Not a table from the paper: this measures the orchestration layer itself.  The
same declarative :class:`~repro.api.SweepSpec` (``P_min`` and ``P_basic`` over
500 random ``SO(t)`` scenarios — 1000 runs) executes on both backends, and the
executor-equivalence contract is asserted on the way: the parallel backend
must produce a :class:`~repro.api.ResultSet` identical to the serial one, in
the same scenario order.

On a single-core box the process pool is pure overhead (fork + pickle); the
benchmark exists to document that overhead honestly and to show the speed-up
once real cores are available.  Results land in the standard pytest-benchmark
JSON via ``--benchmark-json``, same as every other file in this directory.
"""

import pytest

from repro.api import ParallelExecutor, SerialExecutor, Sweep
from repro.protocols import BasicProtocol, MinProtocol
from repro.workloads import random_scenarios

SCENARIO_COUNT = 500


@pytest.fixture(scope="module")
def sweep_spec():
    """The shared 500-scenario spec (built once; specs are frozen and reusable)."""
    return (Sweep.of(MinProtocol(2), BasicProtocol(2))
            .on(random_scenarios(6, 2, count=SCENARIO_COUNT, seed=5))
            .build())


@pytest.fixture(scope="module")
def serial_results(sweep_spec):
    """Reference results, computed once, for the equivalence assertions."""
    return sweep_spec.run(SerialExecutor())


def test_bench_serial_sweep(benchmark, sweep_spec, serial_results):
    results = benchmark.pedantic(sweep_spec.run, args=(SerialExecutor(),),
                                 rounds=1, iterations=1)
    assert len(results) == SCENARIO_COUNT
    assert results == serial_results


def test_bench_parallel_sweep(benchmark, sweep_spec, serial_results):
    results = benchmark.pedantic(sweep_spec.run, args=(ParallelExecutor(),),
                                 rounds=1, iterations=1)
    assert len(results) == SCENARIO_COUNT
    assert results == serial_results
