#!/usr/bin/env python3
"""Check that relative markdown links in the repo's docs resolve to real files.

Scans the top-level ``*.md`` files plus ``docs/`` and ``examples/`` for
``[text](target)`` links, ignores external (``http(s)://``, ``mailto:``) and
pure-anchor targets, and fails if a referenced path does not exist relative to
the file containing the link.  Run it from anywhere::

    python tools/check_links.py

Exit code 0 means every link resolves; 1 lists the broken ones.  CI's docs job
runs this so README/architecture links cannot rot silently.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Matches [text](target); deliberately simple — the docs use plain links.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Pages the docs set must always ship — a rename or deletion that forgets to
#: update this roster (and the links pointing at the page) fails the docs job.
EXPECTED_PAGES = (
    "README.md",
    "ROADMAP.md",
    "docs/architecture.md",
    "docs/performance.md",
    "docs/observability.md",
    "docs/static-analysis.md",
)


def iter_markdown_files() -> list[Path]:
    files = sorted(REPO_ROOT.glob("*.md"))
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    files.extend(sorted((REPO_ROOT / "examples").glob("*.md")))
    return files


def broken_links(path: Path) -> list[str]:
    broken: list[str] = []
    text = path.read_text(encoding="utf-8")
    for match in LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        if not (path.parent / relative).exists():
            broken.append(f"{path.relative_to(REPO_ROOT)}: broken link -> {target}")
    return broken


def main() -> int:
    problems: list[str] = []
    for name in EXPECTED_PAGES:
        if not (REPO_ROOT / name).exists():
            problems.append(f"expected doc page is missing: {name}")
    checked = 0
    for path in iter_markdown_files():
        checked += 1
        problems.extend(broken_links(path))
    if problems:
        print("\n".join(problems), file=sys.stderr)
        return 1
    print(f"checked {checked} markdown files, all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
