#!/usr/bin/env python3
"""Run the pytest-benchmark suites and emit a canonical ``BENCH_<date>.json``.

The ``benchmarks/`` directory has timed every experiment since PR 1, but the
numbers evaporated with each run: nothing wrote a dated record, so the perf
trajectory the docs reference was empty.  This tool is the single canonical
capture point:

* runs each selected ``benchmarks/bench_*.py`` as its own pytest process with
  ``--benchmark-json`` (a crashing suite is recorded as failed, not fatal);
* merges the per-suite pytest-benchmark output into one machine-readable
  document keyed by suite name, stamped with the date, Python version, and
  platform;
* writes it to ``BENCH_<YYYY-MM-DD>.json`` at the repository root (override
  with ``--out``).

The weekly CI job runs the fast, perf-trajectory-relevant suites
(``--only bench_model_checking bench_store bench_batch_build``) and uploads
the file as a build artifact, so every week leaves a dated, diffable perf
record.

Usage::

    python tools/bench_summary.py                         # every suite (slow!)
    python tools/bench_summary.py --only bench_store      # substring filter
    python tools/bench_summary.py --only bench_model_checking bench_store \
        --out BENCH_ci.json
"""

from __future__ import annotations

import argparse
import datetime as _datetime
import json
import os
import platform
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_DIR = REPO_ROOT / "benchmarks"


def discover_suites(only: Optional[List[str]]) -> List[Path]:
    """The benchmark files to run, optionally filtered by name substrings."""
    suites = sorted(BENCH_DIR.glob("bench_*.py"))
    if only:
        suites = [suite for suite in suites
                  if any(needle in suite.stem for needle in only)]
    return suites


def run_suite(suite: Path, timeout: int) -> Dict[str, object]:
    """Run one benchmark file; return its summary entry (never raises)."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        json_path = Path(handle.name)
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        obs_path = Path(handle.name)
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    # benchmarks/conftest.py dumps the suite process's peak RSS and metrics
    # snapshot here at session finish.
    env["REPRO_OBS_DUMP"] = str(obs_path)
    command = [sys.executable, "-m", "pytest", str(suite), "-q",
               f"--benchmark-json={json_path}"]
    entry: Dict[str, object] = {"suite": suite.stem}
    try:
        completed = subprocess.run(command, cwd=REPO_ROOT, env=env,
                                   capture_output=True, text=True, timeout=timeout)
        entry["returncode"] = completed.returncode
        if completed.returncode != 0:
            entry["error"] = (completed.stdout + completed.stderr)[-2000:]
        try:
            data = json.loads(json_path.read_text())
        except (OSError, json.JSONDecodeError):
            data = {}
        entry["benchmarks"] = [
            {
                "name": bench.get("name"),
                "mean": bench.get("stats", {}).get("mean"),
                "min": bench.get("stats", {}).get("min"),
                "max": bench.get("stats", {}).get("max"),
                "stddev": bench.get("stats", {}).get("stddev"),
                "rounds": bench.get("stats", {}).get("rounds"),
            }
            for bench in data.get("benchmarks", [])
        ]
        try:
            observed = json.loads(obs_path.read_text())
            entry["peak_rss_kb"] = observed.get("peak_rss_kb")
            entry["metrics"] = observed.get("metrics")
        except (OSError, json.JSONDecodeError):
            entry["peak_rss_kb"] = None
            entry["metrics"] = None
    except subprocess.TimeoutExpired:
        entry["returncode"] = -1
        entry["error"] = f"timed out after {timeout}s"
        entry["benchmarks"] = []
    finally:
        for leftover in (json_path, obs_path):
            try:
                leftover.unlink()
            except OSError:
                pass
    return entry


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--only", nargs="*", default=None, metavar="SUBSTRING",
                        help="run only the suites whose filename contains one of "
                             "these substrings (default: every bench_*.py)")
    parser.add_argument("--out", type=Path, default=None,
                        help="output path (default: BENCH_<YYYY-MM-DD>.json at the "
                             "repository root)")
    parser.add_argument("--timeout", type=int, default=1800,
                        help="per-suite timeout in seconds (default 1800)")
    args = parser.parse_args(argv)

    suites = discover_suites(args.only)
    if not suites:
        print(f"no benchmark suites match {args.only!r}", file=sys.stderr)
        return 2

    date = _datetime.date.today().isoformat()
    out = args.out if args.out is not None else REPO_ROOT / f"BENCH_{date}.json"
    document = {
        "date": date,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "suites": [],
    }
    failures = 0
    for suite in suites:
        print(f"running {suite.stem} ...", flush=True)
        entry = run_suite(suite, timeout=args.timeout)
        document["suites"].append(entry)
        count = len(entry["benchmarks"])
        status = "ok" if entry.get("returncode") == 0 else "FAILED"
        if status == "FAILED":
            failures += 1
        print(f"  {status}: {count} benchmark(s)")

    out.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out} ({len(document['suites'])} suites, {failures} failed)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
