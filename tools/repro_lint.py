#!/usr/bin/env python3
"""CI entry point for the repro invariant linter.

Run from the repository root::

    python tools/repro_lint.py --strict

Thin wrapper over :mod:`repro.analysis.lint` so CI does not need the package
installed — it only needs ``src`` on the path.
"""

import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.analysis.lint import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
