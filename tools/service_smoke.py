#!/usr/bin/env python3
"""End-to-end smoke test of the job-server subsystem (CI: service-smoke).

Drives the real deployment shape — a server started through the CLI
(``repro-eba serve``), clients talking HTTP — and checks the properties the
service exists for:

1. two **concurrent identical submissions** of the quickstart scenario against
   a cold store coalesce into exactly ONE computation (the ``/stats`` counters
   prove it) and return byte-identical payloads;
2. the fetched payload is byte-identical to the **direct library path**
   (``spec.run`` + ``render_result`` against a fresh store) — the service adds
   transport, never semantics;
3. ``GET /metrics`` serves the unified registry (Prometheus text and JSON)
   with the coalescing counters from property 1, and ``/stats`` carries
   uptime/version/metrics;
4. a ``repro-eba submit --wait`` round trip works against the same server;
5. ``SIGINT`` shuts the server down gracefully (exit code 0).

Run it locally with ``python tools/service_smoke.py``; exits non-zero with a
diagnostic on the first failed property.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.failures import FailurePattern  # noqa: E402
from repro.service import ServiceClient, decode_request, render_result, sweep_request  # noqa: E402
from repro.store import default_store  # noqa: E402


def quickstart_request() -> dict:
    """The examples/quickstart.py scenario as a service sweep request."""
    n, t = 6, 2
    preferences = (1, 1, 1, 1, 1, 0)
    pattern = FailurePattern.from_blocked(
        n,
        blocked=[(r, 0, j) for r in (0, 1) for j in range(n) if j not in (0, 1)],
    )
    return sweep_request([("min", t), ("basic", t), ("opt", t)],
                         scenarios=[(preferences, pattern)], n=n)


def start_server(cache_dir: Path) -> tuple:
    """Start ``repro-eba serve`` on a free port; return (process, base_url)."""
    env = dict(os.environ, PYTHONPATH=str(ROOT / "src"))
    process = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro.cli", "serve", "--port", "0",
         "--workers", "2", "--cache-dir", str(cache_dir)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
        cwd=ROOT)
    banner = process.stdout.readline().strip()
    # "repro-eba job server on http://127.0.0.1:<port> (2 worker(s))"
    try:
        url = banner.split(" on ", 1)[1].split()[0]
    except IndexError:
        process.kill()
        raise SystemExit(f"could not parse server banner: {banner!r}")
    return process, url


def check(condition: bool, message: str) -> None:
    if not condition:
        raise SystemExit(f"FAIL: {message}")
    print(f"ok: {message}")


def main() -> int:
    body = quickstart_request()
    with tempfile.TemporaryDirectory(prefix="repro-service-smoke-") as tmp:
        tmp_path = Path(tmp)
        process, url = start_server(tmp_path / "served-cache")
        try:
            client = ServiceClient(url, timeout=30.0, retries=5, backoff=0.2)
            check(client.healthz() == {"ok": True}, f"server healthy at {url}")

            # -- 1: two concurrent identical submissions, cold store --------
            payloads = [None, None]

            def submit(slot: int) -> None:
                payloads[slot] = client.submit_and_wait(body, timeout=300.0)

            threads = [threading.Thread(target=submit, args=(slot,))
                       for slot in range(2)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=300.0)
            check(all(payload is not None for payload in payloads),
                  "both concurrent submissions returned")

            stats = client.stats()["service"]
            check(stats["submitted"] == 2, "both submissions counted")
            check(stats["executed"] == 1,
                  f"exactly one computation ran (executed={stats['executed']}, "
                  f"coalesced={stats['coalesced']}, "
                  f"store_hits={stats['store_hits']})")
            check(stats["coalesced"] + stats["store_hits"] == 1,
                  "the duplicate coalesced or hit the warm store")

            first, second = (json.dumps(payload, sort_keys=True)
                             for payload in payloads)
            check(first == second, "concurrent payloads are byte-identical")

            # -- 1b: the unified metrics registry over /metrics -------------
            import urllib.request
            with urllib.request.urlopen(f"{url}/metrics", timeout=30) as response:
                content_type = response.headers.get("Content-Type", "")
                exposition = response.read().decode("utf-8")
            check(content_type.startswith("text/plain"),
                  f"/metrics serves Prometheus text (got {content_type!r})")
            check("repro_jobs_submitted_total 2" in exposition,
                  "/metrics counts both submissions")
            check("repro_jobs_coalesced_total" in exposition
                  and "repro_jobs_executed_total" in exposition,
                  "/metrics exposes the coalescing counters")
            snapshot = client.metrics()
            check(snapshot["repro_jobs_submitted_total"]["value"] == 2,
                  "/metrics?format=json matches the text exposition")
            full_stats = client.stats()
            check("uptime_seconds" in full_stats and "version" in full_stats
                  and "metrics" in full_stats,
                  "/stats embeds uptime, version, and a metrics snapshot")

            # -- 2: byte-identical to the direct library path ---------------
            request = decode_request(body)
            direct = render_result(
                request, request.spec.run(store=default_store(tmp_path / "direct")))
            check(first == json.dumps(direct, sort_keys=True),
                  "service payload is byte-identical to the direct run")

            # -- 3: the CLI submit round trip -------------------------------
            submit_run = subprocess.run(
                [sys.executable, "-m", "repro.cli", "submit", "theorem",
                 "--theorem", "6.5", "--n", "3", "--t", "1", "--wait",
                 "--url", url],
                capture_output=True, text=True, timeout=300,
                env=dict(os.environ, PYTHONPATH=str(ROOT / "src")), cwd=ROOT)
            check(submit_run.returncode == 0,
                  f"CLI submit --wait exits 0 (stderr: {submit_run.stderr.strip()})")
            check("holds" in submit_run.stdout,
                  "CLI submit prints the theorem verdict")

            # -- 4: graceful SIGINT shutdown --------------------------------
            process.send_signal(signal.SIGINT)
            remaining, _ = process.communicate(timeout=30)
            check(process.returncode == 0,
                  f"SIGINT exits 0 (got {process.returncode})")
            check("server stopped" in remaining, "shutdown message printed")
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate(timeout=10)
    print("service smoke test passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
