#!/usr/bin/env python3
"""Validate and summarize a ``--trace FILE`` span trace (CI: obs-smoke).

Usage::

    repro-eba experiment e7 --n 3 --t 1 --trace /tmp/e7.jsonl
    python tools/trace_report.py /tmp/e7.jsonl              # summary table
    python tools/trace_report.py /tmp/e7.jsonl --waterfall  # + top-span bars
    python tools/trace_report.py /tmp/e7.jsonl --json       # machine-readable

Every record is checked against the pinned schema of
:mod:`repro.obs.trace` first; any invalid line makes the report exit
non-zero, so CI can gate on "the tracer only ever writes what it promised".
The summary aggregates spans by name (count / total / mean / max duration)
per category, and the waterfall renders the longest spans against the
trace's wall-clock extent — enough to see where a build → check pipeline
spends its time without leaving the terminal.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.obs import trace as obs_trace  # noqa: E402

#: Width of the waterfall bar column, characters.
BAR_WIDTH = 50


def load(path: Path) -> list:
    """Read and schema-validate every record; exit 1 on the first bad line."""
    records = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                    obs_trace.validate_record(record)
                except Exception as exc:
                    print(f"{path}:{number}: invalid trace record: {exc}",
                          file=sys.stderr)
                    raise SystemExit(1)
                records.append(record)
    except OSError as exc:
        print(f"could not read {path}: {exc}", file=sys.stderr)
        raise SystemExit(1)
    if not records:
        print(f"{path}: empty trace", file=sys.stderr)
        raise SystemExit(1)
    if not any(record["type"] == "meta" for record in records):
        print(f"{path}: no meta record (truncated trace?)", file=sys.stderr)
        raise SystemExit(1)
    return records


def aggregate(records: list) -> dict:
    """Per-(cat, name) span statistics plus trace-wide extent and pids."""
    stats = defaultdict(lambda: {"count": 0, "total": 0.0, "max": 0.0})
    start = end = None
    pids = set()
    for record in records:
        pids.add(record["pid"])
        if record["type"] != "span":
            continue
        entry = stats[(record["cat"], record["name"])]
        entry["count"] += 1
        entry["total"] += record["dur"]
        entry["max"] = max(entry["max"], record["dur"])
        start = record["ts"] if start is None else min(start, record["ts"])
        stop = record["ts"] + record["dur"]
        end = stop if end is None else max(end, stop)
    return {
        "spans": {f"{cat}/{name}" if cat else name:
                  {**entry, "mean": entry["total"] / entry["count"]}
                  for (cat, name), entry in sorted(stats.items())},
        "events": sum(record["type"] == "event" for record in records),
        "records": len(records),
        "pids": sorted(pids),
        "extent": 0.0 if start is None else end - start,
    }


def render_summary(report: dict) -> str:
    lines = [f"{report['records']} records, {report['events']} events, "
             f"{len(report['pids'])} process(es), "
             f"extent {report['extent']:.3f}s", ""]
    if not report["spans"]:
        lines.append("(no spans)")
        return "\n".join(lines)
    name_width = max(len(name) for name in report["spans"])
    lines.append(f"{'span':<{name_width}}  {'count':>6}  {'total':>9}  "
                 f"{'mean':>9}  {'max':>9}")
    for name, entry in sorted(report["spans"].items(),
                              key=lambda item: -item[1]["total"]):
        lines.append(f"{name:<{name_width}}  {entry['count']:>6}  "
                     f"{entry['total']:>8.3f}s  {entry['mean']:>8.4f}s  "
                     f"{entry['max']:>8.4f}s")
    return "\n".join(lines)


def render_waterfall(records: list, top: int = 20) -> str:
    """The ``top`` longest spans as bars over the trace's wall-clock extent."""
    spans = [record for record in records if record["type"] == "span"]
    if not spans:
        return "(no spans)"
    start = min(record["ts"] for record in spans)
    end = max(record["ts"] + record["dur"] for record in spans)
    extent = max(end - start, 1e-9)
    longest = sorted(spans, key=lambda record: -record["dur"])[:top]
    longest.sort(key=lambda record: record["ts"])
    name_width = max(len(record["name"]) for record in longest)
    lines = [f"waterfall ({len(longest)} longest spans over {extent:.3f}s):"]
    for record in longest:
        offset = int(BAR_WIDTH * (record["ts"] - start) / extent)
        width = max(1, int(BAR_WIDTH * record["dur"] / extent))
        bar = " " * offset + "#" * min(width, BAR_WIDTH - offset)
        lines.append(f"{record['name']:<{name_width}}  |{bar:<{BAR_WIDTH}}| "
                     f"{record['dur']:.4f}s pid={record['pid']}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="validate and summarize a repro.obs trace file")
    parser.add_argument("trace", type=Path, help="JSONL trace from --trace FILE")
    parser.add_argument("--waterfall", action="store_true",
                        help="also render the longest spans as time bars")
    parser.add_argument("--top", type=int, default=20,
                        help="spans in the waterfall (default 20)")
    parser.add_argument("--json", action="store_true",
                        help="print the aggregated report as JSON")
    args = parser.parse_args(argv)
    records = load(args.trace)
    report = aggregate(records)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_summary(report))
        if args.waterfall:
            print()
            print(render_waterfall(records, top=args.top))
    return 0


if __name__ == "__main__":
    sys.exit(main())
